//! Parallel per-core `.rrlog` ingest.
//!
//! Each core's log is an independent stream — nothing about decoding core
//! *k* depends on core *j* — so a multi-core recording saved with
//! `--save-logs` can be decoded on a worker pool before the replayers
//! start consuming. The pool mirrors the sweep engine's shape (scoped
//! threads, an atomic work cursor, per-slot results) so outputs come back
//! in input order and the first failure is attributed deterministically
//! regardless of worker interleaving.
//!
//! Decoding is the batched fast path of `relaxreplay::wire`: each worker
//! maps a whole file and decodes it zero-copy, so ingest of an
//! eight-core run costs roughly one core-log's decode time once the pool
//! is wide enough.
//!
//! Since wire v3 chunks are self-contained, a *single* large stream can
//! also be decoded in parallel: [`decode_chunked_parallel`] walks the
//! chunk framing once (no payload work), partitions contiguous chunk
//! ranges balanced by payload bytes, and decodes the ranges on scoped
//! threads. The result is bit-identical to a sequential decode, and the
//! lowest-indexed chunk's error wins deterministically.

use core::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use relaxreplay::wire::{
    chunk_spans, decode_chunked, decode_chunked_range, CHUNK_INDEPENDENT_VERSION,
};
use relaxreplay::{IntervalLog, LogEntry, MappedBytes, WireError};

/// An ingest failure, attributed to the stream that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestError {
    /// Index of the failing stream in the input order.
    pub index: usize,
    /// Path of the failing file (`None` for in-memory streams).
    pub path: Option<PathBuf>,
    /// The underlying wire failure.
    pub source: WireError,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "log {} ({}): {}", self.index, p.display(), self.source),
            None => write!(f, "log {}: {}", self.index, self.source),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The ingest worker count to use when the caller does not care: the
/// host's available parallelism.
#[must_use]
pub fn default_ingest_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `job(0..n)` across `workers` scoped threads, returning results in
/// input order; the lowest-indexed failure wins deterministically.
fn ingest_pool<T, F>(n: usize, workers: usize, job: F) -> Result<Vec<T>, IngestError>
where
    T: Send,
    F: Fn(usize) -> Result<T, IngestError> + Sync,
{
    let workers = if workers == 0 {
        default_ingest_workers()
    } else {
        workers
    }
    .min(n.max(1));

    if workers <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }

    let slots: Vec<Mutex<Option<Result<T, IngestError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("ingest slot poisoned") = Some(job(i));
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(
            slot.into_inner()
                .expect("ingest slot poisoned")
                .expect("every index below the cursor was executed")?,
        );
    }
    Ok(out)
}

/// Splits `spans` into at most `parts` contiguous ranges balanced by
/// payload bytes. Every range is non-empty and the ranges tile
/// `0..spans.len()` in order.
fn partition_spans(spans: &[relaxreplay::ChunkSpan], parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(spans.len()).max(1);
    let total: usize = spans.iter().map(|s| s.payload_bytes).sum();
    let per = total / parts + 1;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, span) in spans.iter().enumerate() {
        acc += span.payload_bytes;
        if acc >= per && ranges.len() + 1 < parts && i + 1 < spans.len() {
            ranges.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    ranges.push((start, spans.len()));
    ranges
}

/// Decodes one `.rrlog` stream with `workers` threads splitting the chunk
/// ranges (`workers == 0` uses [`default_ingest_workers`]).
///
/// Requires wire v3's self-contained chunks to parallelise; older
/// streams, single-worker calls, single-chunk streams, and streams whose
/// framing walk already reports damage all fall back to the sequential
/// [`decode_chunked`], so the result (entries *and* error) is identical
/// to a sequential decode for every worker count.
///
/// # Errors
///
/// Exactly the errors of [`decode_chunked`] on the same stream: the
/// lowest-indexed chunk's failure wins regardless of which worker hit it.
pub fn decode_chunked_parallel(bytes: &[u8], workers: usize) -> Result<IntervalLog, WireError> {
    let workers = if workers == 0 {
        default_ingest_workers()
    } else {
        workers
    };
    let (core, version, spans, walk_err) = chunk_spans(bytes)?;
    if workers <= 1 || version < CHUNK_INDEPENDENT_VERSION || spans.len() < 2 || walk_err.is_some()
    {
        return decode_chunked(bytes);
    }

    let ranges = partition_spans(&spans, workers);
    let results: Vec<Result<Vec<LogEntry>, WireError>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let spans = &spans[start..end];
                s.spawn(move || {
                    let mut out = Vec::new();
                    decode_chunked_range(bytes, spans, start, &mut out).map(|()| out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("range decode worker panicked"))
            .collect()
    });

    // Ranges are contiguous and ascending, so the first failing range in
    // order holds the lowest-indexed failing chunk.
    let mut entries =
        Vec::with_capacity(results.iter().map(|r| r.as_ref().map_or(0, Vec::len)).sum());
    for r in results {
        entries.append(&mut r?);
    }
    Ok(IntervalLog { core, entries })
}

/// Decodes many independent in-memory `.rrlog` streams in parallel,
/// returning the logs in input order (`workers == 0` uses
/// [`default_ingest_workers`]; results are identical for any worker
/// count).
///
/// A single input stream is instead range-partitioned *within* the
/// stream via [`decode_chunked_parallel`], so the worker budget is not
/// wasted when one core's log dwarfs the rest of the ingest.
///
/// # Errors
///
/// Returns the lowest-indexed stream's [`WireError`], wrapped with its
/// index.
pub fn decode_logs_parallel(
    streams: &[&[u8]],
    workers: usize,
) -> Result<Vec<IntervalLog>, IngestError> {
    if streams.len() == 1 {
        return decode_chunked_parallel(streams[0], workers)
            .map(|log| vec![log])
            .map_err(|source| IngestError {
                index: 0,
                path: None,
                source,
            });
    }
    ingest_pool(streams.len(), workers, |i| {
        decode_chunked(streams[i]).map_err(|source| IngestError {
            index: i,
            path: None,
            source,
        })
    })
}

/// Reads and decodes many `.rrlog` files in parallel, returning the logs
/// in input order — the ingest path for `--replay-from` directories and
/// `rr-inspect check` over saved runs.
///
/// # Errors
///
/// Returns the lowest-indexed file's failure (I/O mapped to
/// [`WireError::Io`]), wrapped with its index and path.
pub fn read_rrlogs_parallel(
    paths: &[PathBuf],
    workers: usize,
) -> Result<Vec<IntervalLog>, IngestError> {
    ingest_pool(paths.len(), workers, |i| {
        let wrap = |source| IngestError {
            index: i,
            path: Some(paths[i].clone()),
            source,
        };
        // Zero-copy where the platform allows: mmap the file instead of
        // staging it through a heap buffer (plain-read fallback inside).
        let bytes = MappedBytes::open(&paths[i]).map_err(wrap)?;
        decode_chunked(&bytes).map_err(wrap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxreplay::wire::encode_chunked_with;
    use relaxreplay::LogEntry;
    use rr_mem::CoreId;

    fn logs(n: usize) -> Vec<IntervalLog> {
        (0..n)
            .map(|k| {
                let mut log = IntervalLog::new(CoreId::new(k as u8));
                for i in 0..200u64 {
                    log.entries.push(LogEntry::InorderBlock {
                        instrs: 1 + (i + k as u64) as u32 % 50,
                    });
                    log.entries.push(LogEntry::IntervalFrame {
                        cisn: i as u16,
                        timestamp: i * 7 + k as u64,
                    });
                }
                log
            })
            .collect()
    }

    #[test]
    fn parallel_decode_matches_serial_for_any_worker_count() {
        let logs = logs(8);
        let encoded: Vec<Vec<u8>> = logs.iter().map(|l| encode_chunked_with(l, 64)).collect();
        let streams: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        for workers in [0, 1, 2, 8, 16] {
            let decoded = decode_logs_parallel(&streams, workers).expect("decodes");
            assert_eq!(decoded, logs, "workers={workers}");
        }
    }

    #[test]
    fn first_failing_stream_wins_deterministically() {
        let logs = logs(6);
        let mut encoded: Vec<Vec<u8>> = logs.iter().map(|l| encode_chunked_with(l, 64)).collect();
        // Corrupt streams 2 and 4; index 2 must always be reported.
        let n2 = encoded[2].len();
        encoded[2][n2 - 1] ^= 0x10;
        let n4 = encoded[4].len();
        encoded[4][n4 - 1] ^= 0x10;
        let streams: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        for workers in [1, 2, 8] {
            let err = decode_logs_parallel(&streams, workers).expect_err("must fail");
            assert_eq!(err.index, 2, "workers={workers}");
            assert!(matches!(err.source, WireError::CrcMismatch { .. }));
        }
    }

    #[test]
    fn range_parallel_decode_is_bit_identical_to_serial() {
        let log = &logs(1)[0];
        let encoded = encode_chunked_with(log, 48);
        let serial = decode_chunked(&encoded).expect("serial decodes");
        for workers in [0, 1, 2, 3, 8, 64] {
            let par = decode_chunked_parallel(&encoded, workers).expect("parallel decodes");
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn range_parallel_decode_reports_the_same_error_as_serial() {
        let log = &logs(1)[0];
        let mut encoded = encode_chunked_with(log, 48);
        // Corrupt a payload byte in the middle of the stream.
        let mid = encoded.len() / 2;
        encoded[mid] ^= 0x40;
        let serial_err = decode_chunked(&encoded).expect_err("serial fails");
        for workers in [2, 4, 8] {
            let par_err = decode_chunked_parallel(&encoded, workers).expect_err("parallel fails");
            assert_eq!(par_err, serial_err, "workers={workers}");
        }
    }

    #[test]
    fn pre_v3_streams_fall_back_to_sequential_decode() {
        let log = &logs(1)[0];
        for version in [1u16, 2] {
            let encoded = relaxreplay::wire::encode_chunked_with_version(log, 48, version);
            let serial = decode_chunked(&encoded).expect("serial decodes");
            let par = decode_chunked_parallel(&encoded, 8).expect("fallback decodes");
            assert_eq!(par, serial, "version={version}");
        }
    }

    #[test]
    fn single_worker_parallel_decode_equals_direct_decode() {
        let log = &logs(1)[0];
        let encoded = encode_chunked_with(log, 48);
        assert_eq!(
            decode_chunked_parallel(&encoded, 1).expect("decodes"),
            decode_chunked(&encoded).expect("decodes"),
        );
    }

    #[test]
    fn single_stream_ingest_partitions_within_the_stream() {
        let log = &logs(1)[0];
        let encoded = encode_chunked_with(log, 48);
        let streams = [encoded.as_slice()];
        for workers in [0, 1, 4] {
            let decoded = decode_logs_parallel(&streams, workers).expect("decodes");
            assert_eq!(decoded.len(), 1);
            assert_eq!(&decoded[0], log, "workers={workers}");
        }
    }

    #[test]
    fn span_partitions_tile_and_are_nonempty() {
        let log = &logs(1)[0];
        let encoded = encode_chunked_with(log, 48);
        let (_, _, spans, walk_err) = relaxreplay::chunk_spans(&encoded).expect("spans");
        assert!(walk_err.is_none());
        assert!(spans.len() > 2, "need a multi-chunk stream for this test");
        for parts in 1..=spans.len() + 2 {
            let ranges = partition_spans(&spans, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut next = 0usize;
            for &(start, end) in &ranges {
                assert_eq!(start, next, "parts={parts}");
                assert!(end > start, "parts={parts}: empty range");
                next = end;
            }
            assert_eq!(next, spans.len(), "parts={parts}");
        }
    }

    #[test]
    fn file_ingest_round_trips_and_attributes_errors() {
        let dir = std::env::temp_dir().join("rr_ingest_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let logs = logs(4);
        let mut paths = Vec::new();
        for (k, log) in logs.iter().enumerate() {
            let path = dir.join(format!("core{k}.rrlog"));
            relaxreplay::wire::write_rrlog(&path, log).expect("writes");
            paths.push(path);
        }
        let decoded = read_rrlogs_parallel(&paths, 4).expect("decodes");
        assert_eq!(decoded, logs);

        paths.push(dir.join("missing.rrlog"));
        let err = read_rrlogs_parallel(&paths, 4).expect_err("must fail");
        assert_eq!(err.index, 4);
        assert!(matches!(err.source, WireError::Io(_)));
        assert!(err.to_string().contains("missing.rrlog"));
    }
}
