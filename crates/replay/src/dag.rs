//! The interval-dependency DAG — the one intermediate representation all
//! replay executors consume.
//!
//! A recorded execution patches into per-core op streams
//! ([`PatchedLog`]); this module lifts them into an explicit graph whose
//! nodes are intervals (with their op slices) and whose edges are the
//! constraints replay must honour:
//!
//! * **same-core chains** — a core's intervals replay in log order;
//! * **cross-core predecessor edges** — the Cyrus-style partial order the
//!   recorder piggybacks on coherence replies ([`IntervalOrdering::preds`]);
//! * **barrier intervals** — conservative total ordering around
//!   directory-mode dirty evictions ([`IntervalOrdering::barriers`]).
//!
//! Two constructors cover the two ordering sources: [`IntervalDag::total_order`]
//! chains every interval in recorded (timestamp, core) order — the paper's
//! §3.5 sequential schedule, available from the logs alone — while
//! [`IntervalDag::partial_order`] keeps only the recorded communication
//! edges, exposing the replay parallelism of §3.6. Both validate their
//! inputs (thread counts, core ids, ordering lengths, acyclicity) and
//! return typed [`ReplayError`]s, so corrupt or hostile inputs can neither
//! panic nor hang an executor.
//!
//! Three executors consume the DAG: the sequential replayer
//! ([`crate::replay`] = this DAG executed at one worker), the cost-model
//! list scheduler ([`crate::replay_parallel`]), and the multithreaded
//! engine ([`crate::replay_threaded`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

use relaxreplay::IntervalOrdering;

use crate::patch::{PatchedLog, ReplayOp};
use crate::replayer::ReplayError;

/// One interval: a node of the [`IntervalDag`].
#[derive(Clone, Debug)]
pub struct IntervalNode<'a> {
    /// The core this interval belongs to.
    pub core: usize,
    /// The interval's per-core ordinal (its index in the core's log).
    pub ordinal: usize,
    /// The interval's replay ops (everything between two `EndInterval`s).
    pub ops: &'a [ReplayOp],
    /// The recorded global timestamp (QuickRec ordering).
    pub timestamp: u64,
    /// Whether this is a barrier interval (directory-mode dirty eviction).
    pub barrier: bool,
    /// Number of incoming dependency edges.
    pub preds: usize,
    /// Node ids that depend on this interval.
    pub succs: Vec<usize>,
}

/// Shape statistics of an [`IntervalDag`] — what `rr-inspect dag` prints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagStats {
    /// Interval count.
    pub nodes: usize,
    /// Dependency-edge count.
    pub edges: usize,
    /// Number of replayed cores.
    pub threads: usize,
    /// Longest dependency chain, in intervals.
    pub critical_path: usize,
    /// Largest number of intervals at the same dependency depth — an upper
    /// bound on how many workers the DAG can keep busy at once.
    pub max_width: usize,
}

impl DagStats {
    /// `nodes / critical_path`: the speedup an unbounded worker pool could
    /// reach if every interval cost the same.
    #[must_use]
    pub fn ideal_speedup(&self) -> f64 {
        if self.critical_path == 0 {
            return 1.0;
        }
        self.nodes as f64 / self.critical_path as f64
    }
}

/// The interval-dependency DAG: intervals with their patch-op slices,
/// plus every ordering edge replay must honour. See the module docs.
#[derive(Clone, Debug)]
pub struct IntervalDag<'a> {
    nodes: Vec<IntervalNode<'a>>,
    threads: usize,
    edges: usize,
}

/// Splits each log's op stream at its `EndInterval` markers, yielding the
/// per-core node lists (timestamps from the interval frames).
fn split_intervals<'a>(
    threads: usize,
    logs: &'a [PatchedLog],
) -> Result<Vec<Vec<IntervalNode<'a>>>, ReplayError> {
    if logs.len() != threads {
        return Err(ReplayError::ThreadCountMismatch {
            programs: threads,
            logs: logs.len(),
        });
    }
    for log in logs {
        if log.core.index() >= threads {
            return Err(ReplayError::CoreOutOfRange {
                core: log.core.index(),
                threads,
            });
        }
    }
    let mut per_core = Vec::with_capacity(logs.len());
    for log in logs {
        let mut nodes = Vec::new();
        let mut start = 0usize;
        for (i, op) in log.ops.iter().enumerate() {
            if let ReplayOp::EndInterval { timestamp, .. } = op {
                nodes.push(IntervalNode {
                    core: log.core.index(),
                    ordinal: nodes.len(),
                    ops: &log.ops[start..i],
                    timestamp: *timestamp,
                    barrier: false,
                    preds: 0,
                    succs: Vec::new(),
                });
                start = i + 1;
            }
        }
        per_core.push(nodes);
    }
    Ok(per_core)
}

impl<'a> IntervalDag<'a> {
    /// Builds the DAG for the recorded **total order**: one chain through
    /// every interval in (timestamp, core, ordinal) order — exactly the
    /// schedule the paper's sequential OS module replays (§3.5). Needs no
    /// [`IntervalOrdering`], so it works for runs loaded from bare
    /// `.rrlog` files.
    ///
    /// # Errors
    ///
    /// [`ReplayError::ThreadCountMismatch`] / [`ReplayError::CoreOutOfRange`]
    /// on inconsistent inputs.
    pub fn total_order(threads: usize, logs: &'a [PatchedLog]) -> Result<Self, ReplayError> {
        let per_core = split_intervals(threads, logs)?;
        let mut nodes: Vec<IntervalNode<'a>> = per_core.into_iter().flatten().collect();
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by_key(|&i| (nodes[i].timestamp, nodes[i].core, nodes[i].ordinal));
        for pair in order.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            nodes[from].succs.push(to);
            nodes[to].preds += 1;
        }
        let edges = nodes.len().saturating_sub(1);
        let dag = IntervalDag {
            nodes,
            threads,
            edges,
        };
        debug_assert_eq!(dag.check_acyclic(), Ok(()));
        Ok(dag)
    }

    /// Builds the DAG for the recorded **partial order**: same-core
    /// chains, cross-core predecessor edges, and barrier intervals from
    /// `orderings` (paper §3.6). Validated acyclic, so every executor can
    /// rely on making progress.
    ///
    /// # Errors
    ///
    /// [`ReplayError::ThreadCountMismatch`], [`ReplayError::CoreOutOfRange`]
    /// (a log or ordering names a core outside the thread set),
    /// [`ReplayError::OrderingMismatch`] (an ordering is shorter than its
    /// log's interval count), or [`ReplayError::CyclicOrdering`] (the
    /// recorded edges contradict each other — corrupt input; a correct
    /// recorder cannot produce a cycle).
    pub fn partial_order(
        threads: usize,
        logs: &'a [PatchedLog],
        orderings: &[IntervalOrdering],
    ) -> Result<Self, ReplayError> {
        if orderings.len() != logs.len() {
            return Err(ReplayError::ThreadCountMismatch {
                programs: threads,
                logs: orderings.len(),
            });
        }
        let per_core = split_intervals(threads, logs)?;

        // Re-stamp nodes from the ordering (frame timestamps + barrier
        // flags), validating lengths up front.
        let mut first_of_core = Vec::with_capacity(per_core.len());
        let mut nodes: Vec<IntervalNode<'a>> = Vec::new();
        for (c, (core_nodes, ord)) in per_core.into_iter().zip(orderings).enumerate() {
            let ordered = ord.timestamps.len().min(ord.barriers.len());
            if core_nodes.len() > ordered {
                return Err(ReplayError::OrderingMismatch {
                    core: c,
                    intervals: core_nodes.len(),
                    ordered,
                });
            }
            first_of_core.push(nodes.len());
            for (k, mut n) in core_nodes.into_iter().enumerate() {
                n.timestamp = ord.timestamps[k];
                n.barrier = ord.barriers[k];
                nodes.push(n);
            }
        }
        let total = nodes.len();
        let intervals_of = |core: usize| -> usize {
            let start = first_of_core[core];
            let end = first_of_core.get(core + 1).copied().unwrap_or(total);
            end - start
        };
        let node_id =
            |core: usize, ordinal: u64| -> usize { first_of_core[core] + ordinal as usize };

        let mut edges = 0usize;
        let mut add_edge = |nodes: &mut Vec<IntervalNode>, from: usize, to: usize| {
            if from != to {
                nodes[from].succs.push(to);
                nodes[to].preds += 1;
                edges += 1;
            }
        };
        // Same-core chains.
        for c in 0..logs.len() {
            for k in 1..intervals_of(c) {
                add_edge(&mut nodes, node_id(c, k as u64 - 1), node_id(c, k as u64));
            }
        }
        // Cross-core predecessor edges (deduplicated per node).
        for (c, ord) in orderings.iter().enumerate() {
            for (k, preds) in ord.preds.iter().enumerate() {
                if k >= intervals_of(c) {
                    // Orderings may extend past the last *logged* interval
                    // (e.g. a trailing open interval); edges into intervals
                    // the log never closed constrain nothing.
                    continue;
                }
                let to = node_id(c, k as u64);
                let mut seen: Vec<(usize, u64)> = Vec::new();
                for &(src_core, src_ord) in preds {
                    let sc = src_core.index();
                    // A corrupted ordering can name a core outside the
                    // thread set; `intervals_of` would index out of bounds.
                    if sc >= logs.len() {
                        return Err(ReplayError::CoreOutOfRange {
                            core: sc,
                            threads: logs.len(),
                        });
                    }
                    if sc == c || src_ord as usize >= intervals_of(sc) {
                        continue;
                    }
                    if seen.contains(&(sc, src_ord)) {
                        continue;
                    }
                    seen.push((sc, src_ord));
                    add_edge(&mut nodes, node_id(sc, src_ord), to);
                }
            }
        }
        // Barrier edges: an eviction-closed interval precedes everything
        // with a larger timestamp, and follows everything with a smaller
        // one.
        let mut by_time: Vec<usize> = (0..nodes.len()).collect();
        by_time.sort_by_key(|&i| (nodes[i].timestamp, nodes[i].core));
        let mut last_of_core: Vec<Option<usize>> = vec![None; logs.len()];
        let mut last_barrier: Option<usize> = None;
        for &i in &by_time {
            if let Some(b) = last_barrier {
                add_edge(&mut nodes, b, i);
            }
            if nodes[i].barrier {
                for prev in last_of_core.iter().flatten() {
                    add_edge(&mut nodes, *prev, i);
                }
                last_barrier = Some(i);
            }
            last_of_core[nodes[i].core] = Some(i);
        }

        let dag = IntervalDag {
            nodes,
            threads,
            edges,
        };
        dag.check_acyclic()?;
        Ok(dag)
    }

    /// The interval nodes, grouped by core (all of core 0's intervals in
    /// log order, then core 1's, …).
    #[must_use]
    pub fn nodes(&self) -> &[IntervalNode<'a>] {
        &self.nodes
    }

    /// Number of replayed cores.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total number of dependency edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// A deterministic topological order: Kahn's algorithm with ready
    /// nodes drained in (timestamp, core, id) order — so for a
    /// [`total_order`](Self::total_order) DAG this *is* the recorded
    /// replay schedule. Constructors validate acyclicity, so the order
    /// always covers every node.
    #[must_use]
    pub fn topo_order(&self) -> Vec<usize> {
        let mut deps: Vec<usize> = self.nodes.iter().map(|n| n.preds).collect();
        let mut ready: BinaryHeap<Reverse<(u64, usize, usize)>> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.preds == 0)
            .map(|(i, n)| Reverse((n.timestamp, n.core, i)))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(Reverse((_, _, i))) = ready.pop() {
            order.push(i);
            for &s in &self.nodes[i].succs {
                deps[s] -= 1;
                if deps[s] == 0 {
                    ready.push(Reverse((self.nodes[s].timestamp, self.nodes[s].core, s)));
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len());
        order
    }

    /// Kahn's algorithm as a pure validity check.
    fn check_acyclic(&self) -> Result<(), ReplayError> {
        let mut deps: Vec<usize> = self.nodes.iter().map(|n| n.preds).collect();
        let mut stack: Vec<usize> = deps
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0usize;
        while let Some(i) = stack.pop() {
            visited += 1;
            for &s in &self.nodes[i].succs {
                deps[s] -= 1;
                if deps[s] == 0 {
                    stack.push(s);
                }
            }
        }
        if visited == self.nodes.len() {
            Ok(())
        } else {
            Err(ReplayError::CyclicOrdering {
                executed: visited,
                intervals: self.nodes.len(),
            })
        }
    }

    /// Shape statistics: node/edge counts, critical-path length (longest
    /// dependency chain in intervals), maximum width, ideal speedup.
    #[must_use]
    pub fn stats(&self) -> DagStats {
        let order = self.topo_order();
        let mut depth = vec![0usize; self.nodes.len()];
        let mut critical_path = 0usize;
        for &i in &order {
            let d = depth[i] + 1;
            critical_path = critical_path.max(d);
            for &s in &self.nodes[i].succs {
                depth[s] = depth[s].max(d);
            }
        }
        let mut width = vec![0usize; critical_path];
        for (&d, _) in depth.iter().zip(&self.nodes) {
            width[d] += 1;
        }
        DagStats {
            nodes: self.nodes.len(),
            edges: self.edges,
            threads: self.threads,
            critical_path,
            max_width: width.iter().copied().max().unwrap_or(0),
        }
    }

    /// Graphviz DOT export: one node per interval (barriers as boxes),
    /// one edge per dependency. Load with `dot -Tsvg`.
    #[must_use]
    pub fn to_dot(&self, title: &str) -> String {
        self.to_dot_with_path(title, &[])
    }

    /// [`to_dot`](Self::to_dot) with a highlighted interval chain:
    /// `path` names node ids in execution order (typically
    /// [`critical_path_blame`](crate::critical_path_blame)'s path), and
    /// the chain's nodes and edges are drawn in red with a heavier pen —
    /// the exported graph shows where replay time goes.
    #[must_use]
    pub fn to_dot_with_path(&self, title: &str, path: &[usize]) -> String {
        let on_path: Vec<bool> = {
            let mut v = vec![false; self.nodes.len()];
            for &i in path {
                if let Some(slot) = v.get_mut(i) {
                    *slot = true;
                }
            }
            v
        };
        let mut s = String::new();
        let _ = writeln!(s, "digraph {{");
        let _ = writeln!(s, "  label={title:?};");
        let _ = writeln!(s, "  rankdir=TB; node [fontsize=10];");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.barrier { "box" } else { "ellipse" };
            let hot = if on_path[i] {
                " color=red penwidth=2.0"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "  n{i} [label=\"c{}.{}\\n@{}\" shape={shape}{hot}];",
                n.core, n.ordinal, n.timestamp
            );
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for &d in &n.succs {
                // Consecutive path nodes are always a real DAG edge (the
                // path is built by predecessor walk-back), so matching
                // window pairs highlights exactly the critical chain.
                let hot = if path.windows(2).any(|w| w[0] == i && w[1] == d) {
                    " [color=red penwidth=2.0]"
                } else {
                    ""
                };
                let _ = writeln!(s, "  n{i} -> n{d}{hot};");
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}
