//! The multithreaded replay engine: executes an [`IntervalDag`]'s ready
//! intervals concurrently on a pool of OS threads against shared memory.
//!
//! This is the real (wall-clock) counterpart of the cost-model list
//! scheduler in [`crate::replay_parallel`]: where that executor *models*
//! the makespan on one host thread, this one actually runs intervals in
//! parallel — the paper's §3.6 observation ("a scheme that records a
//! partial order admits parallel replay") made concrete.
//!
//! ## Why concurrent interval execution is deterministic
//!
//! Two intervals run concurrently only when the DAG leaves them
//! unordered, which the recorder guarantees means they do not
//! communicate: any conflicting access raises a coherence transaction,
//! which either terminates an interval or is answered with a predecessor
//! edge — both become DAG edges. Unordered intervals therefore race only
//! on reads of the same locations, and word-atomic shared memory
//! ([`rr_isa::SharedMem`]) keeps even structurally racy page traffic
//! safe. Each core's architectural state lives behind its own mutex and
//! is touched by one worker at a time (same-core intervals are chained),
//! so per-core load traces come out in program order at any worker
//! count.
//!
//! Synchronization: dependency counters are atomics decremented on
//! interval completion; ready nodes flow through a mutex-protected heap
//! with a condvar; the queue lock's release/acquire pairing establishes
//! happens-before from a completed interval's stores to every dependent's
//! loads. The first replay error aborts the pool and is returned typed —
//! a corrupt DAG can neither hang nor panic the engine (acyclicity is
//! validated at DAG construction).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use relaxreplay::IntervalOrdering;
use rr_isa::{Interp, MemImage, Program, SharedMem};
use rr_mem::CoreId;

use crate::cost::{CostModel, ReplayEvents};
use crate::dag::IntervalDag;
use crate::patch::PatchedLog;
use crate::replayer::{check_end_state, exec_interval_ops, ReplayError, ReplayOutcome};

/// Which executor a replay should run on — the knob `rr_sim` and the
/// CLIs thread through the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayEngine {
    /// The sequential DAG executor (recorded total order, one thread).
    Sequential,
    /// The multithreaded executor at the given worker count (the recorded
    /// partial order when an [`IntervalOrdering`] is available, else the
    /// total-order chain).
    Threaded {
        /// Pool size; `0` means the host's available parallelism.
        workers: usize,
    },
}

impl ReplayEngine {
    /// A short stable label (`seq`, `thr4`) for reports and CSV columns.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            ReplayEngine::Sequential => "seq".to_string(),
            ReplayEngine::Threaded { workers } => format!("thr{workers}"),
        }
    }

    /// Resolves `Threaded { workers: 0 }` to the host's parallelism.
    #[must_use]
    pub fn resolved_workers(self) -> usize {
        match self {
            ReplayEngine::Sequential => 1,
            ReplayEngine::Threaded { workers: 0 } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ReplayEngine::Threaded { workers } => workers,
        }
    }
}

/// Replays on the chosen engine. `orderings` supplies the recorded
/// partial order; without it the threaded engine falls back to the
/// total-order chain (correct, but serial — every edge of the chain is a
/// dependency).
///
/// # Errors
///
/// Same conditions as [`crate::replay`], plus the DAG validation errors
/// ([`ReplayError::OrderingMismatch`], [`ReplayError::CyclicOrdering`],
/// [`ReplayError::CoreOutOfRange`]) on corrupt ordering inputs.
pub fn replay_with(
    programs: &[Program],
    logs: &[PatchedLog],
    orderings: Option<&[IntervalOrdering]>,
    mem: MemImage,
    cost: &CostModel,
    engine: ReplayEngine,
) -> Result<ReplayOutcome, ReplayError> {
    match engine {
        ReplayEngine::Sequential => crate::replayer::replay(programs, logs, mem, cost),
        ReplayEngine::Threaded { .. } => {
            let dag = match orderings {
                Some(o) => IntervalDag::partial_order(programs.len(), logs, o)?,
                None => IntervalDag::total_order(programs.len(), logs)?,
            };
            execute_threaded(programs, &dag, mem, cost, engine.resolved_workers())
        }
    }
}

/// Replays the recorded partial order on `workers` OS threads and
/// returns an outcome verifiable exactly like a sequential replay.
///
/// # Errors
///
/// As [`replay_with`] with a threaded engine.
pub fn replay_threaded(
    programs: &[Program],
    logs: &[PatchedLog],
    orderings: &[IntervalOrdering],
    mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<ReplayOutcome, ReplayError> {
    let dag = IntervalDag::partial_order(programs.len(), logs, orderings)?;
    execute_threaded(programs, &dag, mem, cost, workers)
}

struct CoreState<'p> {
    interp: Interp<'p>,
    trace: Vec<u64>,
    events: ReplayEvents,
}

struct Queue {
    /// Ready nodes, drained lowest (timestamp, id) first — a deterministic
    /// *priority*, though actual execution order depends on worker timing
    /// (and may: outcomes are interleaving-independent by construction).
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    executed: usize,
    done: bool,
}

/// Executes a validated [`IntervalDag`] on a scoped worker pool.
///
/// # Errors
///
/// Any [`ReplayError`] raised while executing an interval (the first one
/// aborts the pool), or the DAG validation errors if the DAG and
/// `programs` disagree on the thread count.
pub fn execute_threaded(
    programs: &[Program],
    dag: &IntervalDag<'_>,
    mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<ReplayOutcome, ReplayError> {
    if dag.threads() != programs.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: dag.threads(),
        });
    }
    let nodes = dag.nodes();
    let shared = SharedMem::from_image(&mem);
    drop(mem);

    let cores: Vec<Mutex<CoreState>> = programs
        .iter()
        .map(|p| {
            Mutex::new(CoreState {
                interp: Interp::new(p),
                trace: Vec::new(),
                events: ReplayEvents::default(),
            })
        })
        .collect();
    let deps: Vec<AtomicUsize> = nodes.iter().map(|n| AtomicUsize::new(n.preds)).collect();
    let queue = Mutex::new(Queue {
        ready: nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.preds == 0)
            .map(|(i, n)| Reverse((n.timestamp, i)))
            .collect(),
        executed: 0,
        done: nodes.is_empty(),
    });
    let cond = Condvar::new();
    let error: Mutex<Option<ReplayError>> = Mutex::new(None);

    let pool = workers.clamp(1, nodes.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| {
                let mut memh = shared.handle();
                loop {
                    let node = {
                        let mut q = queue.lock().expect("replay queue poisoned");
                        loop {
                            if q.done {
                                return;
                            }
                            match q.ready.pop() {
                                Some(Reverse((_, id))) => break id,
                                None => q = cond.wait(q).expect("replay queue poisoned"),
                            }
                        }
                    };
                    let n = &nodes[node];
                    // Same-core intervals are chained in the DAG, so this
                    // lock is uncontended; it exists to hand the core's
                    // architectural state from worker to worker.
                    let result = {
                        let mut cs = cores[n.core].lock().expect("core state poisoned");
                        cs.events.intervals += 1;
                        let CoreState {
                            interp,
                            trace,
                            events,
                        } = &mut *cs;
                        exec_interval_ops(
                            n.ops,
                            CoreId::new(n.core as u8),
                            interp,
                            &mut memh,
                            trace,
                            events,
                        )
                    };
                    match result {
                        Err(e) => {
                            let mut slot = error.lock().expect("error slot poisoned");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            drop(slot);
                            let mut q = queue.lock().expect("replay queue poisoned");
                            q.done = true;
                            drop(q);
                            cond.notify_all();
                            return;
                        }
                        Ok(()) => {
                            let mut newly_ready = Vec::new();
                            for &succ in &n.succs {
                                if deps[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    newly_ready.push(succ);
                                }
                            }
                            let mut q = queue.lock().expect("replay queue poisoned");
                            q.executed += 1;
                            if q.executed == nodes.len() {
                                q.done = true;
                            }
                            for id in newly_ready {
                                q.ready.push(Reverse((nodes[id].timestamp, id)));
                            }
                            let wake = q.done || !q.ready.is_empty();
                            drop(q);
                            if wake {
                                cond.notify_all();
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let q = queue.into_inner().expect("replay queue poisoned");
    if q.executed != nodes.len() {
        // Unreachable for a constructor-validated DAG; kept as a typed
        // error so a future executor bug cannot silently truncate replay.
        return Err(ReplayError::CyclicOrdering {
            executed: q.executed,
            intervals: nodes.len(),
        });
    }

    let mut interps = Vec::with_capacity(cores.len());
    let mut traces = Vec::with_capacity(cores.len());
    let mut events = ReplayEvents::default();
    for c in cores {
        let cs = c.into_inner().expect("core state poisoned");
        events.merge(&cs.events);
        traces.push(cs.trace);
        interps.push(cs.interp);
    }
    check_end_state(programs, &interps)?;

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok(ReplayOutcome {
        mem: shared.to_image(),
        load_traces: traces,
        events,
        user_cycles,
        os_cycles,
    })
}
