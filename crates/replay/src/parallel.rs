//! Parallel replay of RelaxReplay logs (paper §3.6, §5.4).
//!
//! The paper's QuickRec-style interval ordering records a *total* order,
//! forcing sequential replay; §3.6 notes that pairing RelaxReplay with a
//! chunk-ordering scheme that records a *partial* order (Karma, Cyrus)
//! yields parallel replay "for free". Our recorder captures exactly that
//! partial order alongside the timestamps
//! ([`IntervalOrdering`]): cross-core predecessor edges delivered with
//! coherence replies, plus conservative barrier intervals for
//! directory-mode dirty evictions.
//!
//! [`replay_parallel`] validates the partial order by *executing* the
//! intervals in a topological order chosen by a list scheduler (generally
//! very different from the timestamp order) and returning a
//! [`ReplayOutcome`] the caller can pass to [`verify`](crate::verify). It
//! also reports the makespan on `workers` replay cores under the replay
//! cost model — the parallel-replay speedup of §5.4's closing remark.

use std::collections::BinaryHeap;

use relaxreplay::IntervalOrdering;
use rr_isa::{Interp, MemImage, Program};
use rr_mem::CoreId;

use crate::cost::{CostModel, ReplayEvents};
use crate::patch::{PatchedLog, ReplayOp};
use crate::replayer::{exec_interval_ops, ReplayError, ReplayOutcome};

/// Result of a parallel replay.
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// The replayed execution (memory, load traces, event counts) —
    /// verifiable against the recording exactly like a sequential replay.
    pub outcome: ReplayOutcome,
    /// Makespan in estimated cycles on the given number of replay cores.
    pub parallel_cycles: u64,
    /// Total work in estimated cycles (= sequential replay time).
    pub sequential_cycles: u64,
    /// Number of replay workers the schedule used.
    pub workers: usize,
}

impl ParallelOutcome {
    /// Speedup of parallel over sequential replay.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.parallel_cycles as f64
    }
}

struct Node<'a> {
    core: usize,
    ops: &'a [ReplayOp],
    timestamp: u64,
    barrier: bool,
    duration: u64,
    deps_remaining: usize,
    dependents: Vec<usize>,
    ready_at: u64,
}

fn interval_duration(ops: &[ReplayOp], cost: &CostModel) -> u64 {
    let mut ev = ReplayEvents {
        intervals: 1,
        ..ReplayEvents::default()
    };
    for op in ops {
        match op {
            ReplayOp::RunBlock { instrs } => {
                ev.blocks += 1;
                ev.user_instrs += u64::from(*instrs);
            }
            ReplayOp::InjectLoad { .. } => ev.injected_loads += 1,
            ReplayOp::ApplyStore { .. } => ev.applied_stores += 1,
            ReplayOp::SkipStore => ev.skips += 1,
            ReplayOp::InjectRmw { .. } => ev.injected_rmws += 1,
            ReplayOp::EndInterval { .. } => {}
        }
    }
    cost.total_cycles(&ev)
}

/// Replays patched logs **in parallel**, honouring the recorded partial
/// order instead of the total timestamp order.
///
/// The execution itself runs on one host thread (the point is validating
/// the order and modelling the time, not wall-clock speed): a list
/// scheduler with `workers` replay cores picks ready intervals, executes
/// each atomically against shared memory, and accumulates the makespan.
///
/// # Errors
///
/// Same conditions as [`replay`](crate::replay) — plus any log/ordering
/// length mismatch, which indicates corrupted inputs.
pub fn replay_parallel(
    programs: &[Program],
    logs: &[PatchedLog],
    orderings: &[IntervalOrdering],
    mut mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<ParallelOutcome, ReplayError> {
    assert!(workers >= 1, "need at least one replay worker");
    if programs.len() != logs.len() || logs.len() != orderings.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: logs.len(),
        });
    }
    // A corrupted log can name an arbitrary core; reject before indexing.
    for log in logs {
        if log.core.index() >= programs.len() {
            return Err(ReplayError::CoreOutOfRange {
                core: log.core.index(),
                threads: programs.len(),
            });
        }
    }

    // ---- build nodes -----------------------------------------------------
    let mut nodes: Vec<Node> = Vec::new();
    let mut first_node_of_core: Vec<usize> = Vec::new();
    for (c, (log, ord)) in logs.iter().zip(orderings).enumerate() {
        first_node_of_core.push(nodes.len());
        let mut start = 0usize;
        let mut k = 0usize;
        for (i, op) in log.ops.iter().enumerate() {
            if let ReplayOp::EndInterval { .. } = op {
                assert!(
                    k < ord.timestamps.len(),
                    "ordering shorter than the log's intervals"
                );
                nodes.push(Node {
                    core: c,
                    ops: &log.ops[start..i],
                    timestamp: ord.timestamps[k],
                    barrier: ord.barriers[k],
                    duration: interval_duration(&log.ops[start..i], cost),
                    deps_remaining: 0,
                    dependents: Vec::new(),
                    ready_at: 0,
                });
                start = i + 1;
                k += 1;
            }
        }
    }
    let total_nodes = nodes.len();
    let first = first_node_of_core.clone();
    let node_id = move |core: usize, ordinal: u64| -> usize { first[core] + ordinal as usize };
    let first2 = first_node_of_core.clone();
    let intervals_of = move |core: usize| -> usize {
        let start = first2[core];
        let end = first2.get(core + 1).copied().unwrap_or(total_nodes);
        end - start
    };

    // ---- edges ------------------------------------------------------------
    let add_edge = |nodes: &mut Vec<Node>, from: usize, to: usize| {
        if from != to {
            nodes[from].dependents.push(to);
            nodes[to].deps_remaining += 1;
        }
    };
    // Same-core chains.
    for c in 0..logs.len() {
        for k in 1..intervals_of(c) {
            add_edge(&mut nodes, node_id(c, k as u64 - 1), node_id(c, k as u64));
        }
    }
    // Cross-core predecessor edges (deduplicated per node).
    for (c, ord) in orderings.iter().enumerate() {
        for (k, preds) in ord.preds.iter().enumerate() {
            let to = node_id(c, k as u64);
            let mut seen: Vec<(usize, u64)> = Vec::new();
            for &(src_core, src_ord) in preds {
                let sc = src_core.index();
                // A corrupted ordering can name a core outside the thread
                // set; `intervals_of` would index out of bounds.
                if sc >= logs.len() {
                    return Err(ReplayError::CoreOutOfRange {
                        core: sc,
                        threads: logs.len(),
                    });
                }
                if sc == c || src_ord as usize >= intervals_of(sc) {
                    continue;
                }
                if seen.contains(&(sc, src_ord)) {
                    continue;
                }
                seen.push((sc, src_ord));
                add_edge(&mut nodes, node_id(sc, src_ord), to);
            }
        }
    }
    // Barrier edges: an eviction-closed interval precedes everything with a
    // larger timestamp, and follows everything with a smaller one.
    let mut by_time: Vec<usize> = (0..nodes.len()).collect();
    by_time.sort_by_key(|&i| (nodes[i].timestamp, nodes[i].core));
    let mut last_of_core: Vec<Option<usize>> = vec![None; logs.len()];
    let mut last_barrier: Option<usize> = None;
    for &i in &by_time {
        if let Some(b) = last_barrier {
            add_edge(&mut nodes, b, i);
        }
        if nodes[i].barrier {
            for prev in last_of_core.iter().flatten() {
                add_edge(&mut nodes, *prev, i);
            }
            last_barrier = Some(i);
        }
        last_of_core[nodes[i].core] = Some(i);
    }

    // ---- list scheduling + execution ---------------------------------------
    let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
    let mut traces: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
    let mut events = ReplayEvents::default();
    // Min-heaps via Reverse ordering: ready tasks by (ready_at, id);
    // workers by free-at time.
    let mut ready: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.deps_remaining == 0 {
            ready.push(std::cmp::Reverse((0, i)));
        }
    }
    let mut worker_free: BinaryHeap<std::cmp::Reverse<u64>> =
        (0..workers).map(|_| std::cmp::Reverse(0u64)).collect();
    let mut makespan = 0u64;
    let mut total_work = 0u64;
    let mut executed = 0usize;

    while let Some(std::cmp::Reverse((ready_at, i))) = ready.pop() {
        let std::cmp::Reverse(free_at) = worker_free.pop().expect("worker pool is non-empty");
        let start = ready_at.max(free_at);
        let finish = start + nodes[i].duration;
        worker_free.push(std::cmp::Reverse(finish));
        makespan = makespan.max(finish);
        total_work += nodes[i].duration;
        events.intervals += 1;
        // Execute the interval now — ready order is a topological order.
        {
            let core = CoreId::new(nodes[i].core as u8);
            let interp = &mut interps[nodes[i].core];
            let trace = &mut traces[nodes[i].core];
            exec_interval_ops(nodes[i].ops, core, interp, &mut mem, trace, &mut events)?;
        }
        executed += 1;
        let dependents = std::mem::take(&mut nodes[i].dependents);
        for d in dependents {
            nodes[d].ready_at = nodes[d].ready_at.max(finish);
            nodes[d].deps_remaining -= 1;
            if nodes[d].deps_remaining == 0 {
                ready.push(std::cmp::Reverse((nodes[d].ready_at, d)));
            }
        }
    }
    assert_eq!(
        executed,
        nodes.len(),
        "ordering graph has a cycle: {} of {} intervals executed",
        executed,
        nodes.len()
    );

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok(ParallelOutcome {
        outcome: ReplayOutcome {
            mem,
            load_traces: traces,
            events,
            user_cycles,
            os_cycles,
        },
        parallel_cycles: makespan,
        sequential_cycles: total_work,
        workers,
    })
}
