//! Parallel replay of RelaxReplay logs (paper §3.6, §5.4) — the
//! *cost-model* executor.
//!
//! The paper's QuickRec-style interval ordering records a *total* order,
//! forcing sequential replay; §3.6 notes that pairing RelaxReplay with a
//! chunk-ordering scheme that records a *partial* order (Karma, Cyrus)
//! yields parallel replay "for free". Our recorder captures exactly that
//! partial order alongside the timestamps
//! ([`IntervalOrdering`]): cross-core predecessor edges delivered with
//! coherence replies, plus conservative barrier intervals for
//! directory-mode dirty evictions.
//!
//! This module consumes the same [`IntervalDag`] IR as the sequential and
//! multithreaded engines: [`replay_parallel`] builds the partial-order DAG
//! and [`execute_modeled`] validates it by *executing* the intervals in a
//! topological order chosen by a list scheduler (generally very different
//! from the timestamp order), returning a [`ReplayOutcome`] the caller can
//! pass to [`verify`](crate::verify). It also reports the makespan on
//! `workers` replay cores under the replay cost model — the
//! parallel-replay speedup of §5.4's closing remark. For *measured*
//! wall-clock parallelism, see [`crate::replay_threaded`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use relaxreplay::IntervalOrdering;
use rr_isa::{Interp, MemImage, Program};
use rr_mem::CoreId;

use crate::cost::{CostModel, ReplayEvents};
use crate::dag::IntervalDag;
use crate::patch::PatchedLog;
use crate::replayer::{exec_interval_ops, ReplayError, ReplayOutcome};

/// Result of a parallel replay.
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// The replayed execution (memory, load traces, event counts) —
    /// verifiable against the recording exactly like a sequential replay.
    pub outcome: ReplayOutcome,
    /// Makespan in estimated cycles on the given number of replay cores.
    pub parallel_cycles: u64,
    /// Total work in estimated cycles (= sequential replay time).
    pub sequential_cycles: u64,
    /// Number of replay workers the schedule used.
    pub workers: usize,
}

impl ParallelOutcome {
    /// Speedup of parallel over sequential replay.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.parallel_cycles as f64
    }
}

/// Replays patched logs honouring the recorded partial order instead of
/// the total timestamp order, modelling the makespan on `workers` replay
/// cores.
///
/// Builds the [`IntervalDag`] from the logs and orderings (validating
/// acyclicity and ordering/log consistency up front), then hands it to
/// [`execute_modeled`].
///
/// # Errors
///
/// Same conditions as [`replay`](crate::replay), plus the DAG validation
/// errors ([`ReplayError::OrderingMismatch`],
/// [`ReplayError::CyclicOrdering`], [`ReplayError::CoreOutOfRange`]) on
/// corrupted ordering inputs.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn replay_parallel(
    programs: &[Program],
    logs: &[PatchedLog],
    orderings: &[IntervalOrdering],
    mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<ParallelOutcome, ReplayError> {
    assert!(workers >= 1, "need at least one replay worker");
    let dag = IntervalDag::partial_order(programs.len(), logs, orderings)?;
    execute_modeled(programs, &dag, mem, cost, workers)
}

/// List-schedules a validated [`IntervalDag`] onto `workers` modelled
/// replay cores, executing every interval on one host thread while
/// accumulating the modelled makespan.
///
/// # Errors
///
/// Any [`ReplayError`] raised while executing an interval, or
/// [`ReplayError::ThreadCountMismatch`] if the DAG and `programs` disagree
/// on the thread count.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn execute_modeled(
    programs: &[Program],
    dag: &IntervalDag<'_>,
    mut mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<ParallelOutcome, ReplayError> {
    assert!(workers >= 1, "need at least one replay worker");
    if dag.threads() != programs.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: dag.threads(),
        });
    }
    let nodes = dag.nodes();
    let durations: Vec<u64> = nodes.iter().map(|n| cost.interval_cycles(n.ops)).collect();
    let mut deps: Vec<usize> = nodes.iter().map(|n| n.preds).collect();
    let mut ready_at: Vec<u64> = vec![0; nodes.len()];

    let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
    let mut traces: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
    let mut events = ReplayEvents::default();
    // Min-heaps via Reverse ordering: ready tasks by (ready_at, id);
    // workers by free-at time.
    let mut ready: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, &d) in deps.iter().enumerate() {
        if d == 0 {
            ready.push(Reverse((0, i)));
        }
    }
    let mut worker_free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let mut makespan = 0u64;
    let mut total_work = 0u64;
    let mut executed = 0usize;

    while let Some(Reverse((task_ready, i))) = ready.pop() {
        let Reverse(free_at) = worker_free.pop().expect("worker pool is non-empty");
        let start = task_ready.max(free_at);
        let finish = start + durations[i];
        worker_free.push(Reverse(finish));
        makespan = makespan.max(finish);
        total_work += durations[i];
        events.intervals += 1;
        // Execute the interval now — ready order is a topological order.
        {
            let node = &nodes[i];
            let core = CoreId::new(node.core as u8);
            exec_interval_ops(
                node.ops,
                core,
                &mut interps[node.core],
                &mut mem,
                &mut traces[node.core],
                &mut events,
            )?;
        }
        executed += 1;
        for &d in &nodes[i].succs {
            ready_at[d] = ready_at[d].max(finish);
            deps[d] -= 1;
            if deps[d] == 0 {
                ready.push(Reverse((ready_at[d], d)));
            }
        }
    }
    if executed != nodes.len() {
        // Unreachable for a constructor-validated DAG; kept typed so a
        // scheduler bug cannot silently truncate replay.
        return Err(ReplayError::CyclicOrdering {
            executed,
            intervals: nodes.len(),
        });
    }

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok(ParallelOutcome {
        outcome: ReplayOutcome {
            mem,
            load_traces: traces,
            events,
            user_cycles,
            os_cycles,
        },
        parallel_cycles: makespan,
        sequential_cycles: total_work,
        workers,
    })
}
