use core::fmt;

use relaxreplay::trace::{TraceEvent, TraceRing};
use relaxreplay::wire::LogSource;
use rr_isa::{Instr, Interp, MemImage, Memory, Program, StepEvent};
use rr_mem::CoreId;

use crate::cost::{CostModel, ReplayEvents};
use crate::dag::IntervalDag;
use crate::patch::{patch_source, PatchSourceError, PatchedLog, ReplayOp};

/// Errors detected while replaying a log. Any of these means the log does
/// not deterministically describe an execution of the given programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A `RunBlock` ran out of program before executing its full size.
    BlockEndedEarly {
        /// The thread being replayed.
        core: CoreId,
        /// Instructions the block still expected.
        remaining: u64,
    },
    /// An inject/skip op found the wrong kind of instruction at the PC.
    InstructionMismatch {
        /// The thread being replayed.
        core: CoreId,
        /// The PC in question.
        pc: usize,
        /// What the log expected ("load", "store", "rmw").
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// A thread's log ended before its program halted, or vice versa.
    IncompleteReplay {
        /// The thread being replayed.
        core: CoreId,
    },
    /// The number of logs does not match the number of programs.
    ThreadCountMismatch {
        /// Number of programs.
        programs: usize,
        /// Number of logs.
        logs: usize,
    },
    /// A log (or a recorded ordering edge) names a core outside the
    /// replayed thread set — a corrupted or misattributed log. Validated
    /// up front so a hostile input yields a typed error instead of an
    /// out-of-bounds panic deep in the scheduler.
    CoreOutOfRange {
        /// The offending core index.
        core: usize,
        /// Number of replayed threads.
        threads: usize,
    },
    /// A core's interval ordering covers a different number of intervals
    /// than its log — a truncated or misattributed ordering sidecar.
    OrderingMismatch {
        /// The core whose ordering disagrees with its log.
        core: usize,
        /// Intervals in the core's log.
        intervals: usize,
        /// Intervals covered by the ordering.
        ordered: usize,
    },
    /// The recorded interval ordering contains a dependency cycle, so no
    /// execution can satisfy it — corrupted ordering data. Detected by
    /// the DAG validation pass at construction, never by a hung executor.
    CyclicOrdering {
        /// Intervals that could be topologically ordered.
        executed: usize,
        /// Total intervals in the DAG.
        intervals: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BlockEndedEarly { core, remaining } => {
                write!(
                    f,
                    "{core}: program halted with {remaining} block instructions left"
                )
            }
            ReplayError::InstructionMismatch {
                core,
                pc,
                expected,
                found,
            } => write!(f, "{core}: expected a {expected} at pc {pc}, found {found}"),
            ReplayError::IncompleteReplay { core } => {
                write!(f, "{core}: log and program ended at different points")
            }
            ReplayError::ThreadCountMismatch { programs, logs } => {
                write!(f, "{programs} programs but {logs} logs")
            }
            ReplayError::CoreOutOfRange { core, threads } => {
                write!(
                    f,
                    "log names core {core} but only {threads} threads are being replayed"
                )
            }
            ReplayError::OrderingMismatch {
                core,
                intervals,
                ordered,
            } => write!(
                f,
                "core {core}: log has {intervals} intervals but the ordering covers {ordered}"
            ),
            ReplayError::CyclicOrdering {
                executed,
                intervals,
            } => write!(
                f,
                "interval ordering has a cycle: only {executed} of {intervals} intervals can execute"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The result of a deterministic replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Final memory image after replay.
    pub mem: MemImage,
    /// Per-thread values read by every load/RMW, in program order —
    /// compared against the recorded execution to prove determinism.
    pub load_traces: Vec<Vec<u64>>,
    /// Event counts driving the cost model.
    pub events: ReplayEvents,
    /// Estimated user cycles (native block execution).
    pub user_cycles: u64,
    /// Estimated OS cycles (the control module of paper §3.5).
    pub os_cycles: u64,
}

impl ReplayOutcome {
    /// Total estimated replay cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.user_cycles + self.os_cycles
    }
}

/// Sequentially replays patched per-processor logs against their programs,
/// emulating the OS control module of paper §3.5.
///
/// Intervals from all processors are merged into the recorded total order
/// (timestamp, then core id — QuickRec ordering) and executed one at a
/// time: `RunBlock` ops execute natively on the interpreter with an
/// instruction-count budget; reordered-load values are injected into the
/// architectural context; patched stores are applied directly to memory;
/// dummies advance the PC.
///
/// # Errors
///
/// Returns a [`ReplayError`] if the logs are inconsistent with the
/// programs — which a correct recorder never produces.
pub fn replay(
    programs: &[Program],
    logs: &[PatchedLog],
    mem: MemImage,
    cost: &CostModel,
) -> Result<ReplayOutcome, ReplayError> {
    replay_traced(programs, logs, mem, cost, None)
}

/// Like [`replay`], but additionally captures the control module's
/// scheduling decisions into `trace` when given: a `ReplayWait` event
/// whenever a thread's next interval had to wait for other threads'
/// intervals in the recorded total order, and a `ReplayRelease` event after
/// each interval completes (carrying the thread's cumulative replayed load
/// count, which anchors divergence forensics).
///
/// # Errors
///
/// Same as [`replay`].
pub fn replay_traced(
    programs: &[Program],
    logs: &[PatchedLog],
    mem: MemImage,
    cost: &CostModel,
    trace: Option<&mut TraceRing>,
) -> Result<ReplayOutcome, ReplayError> {
    let dag = IntervalDag::total_order(programs.len(), logs)?;
    execute_sequential(programs, &dag, mem, cost, trace)
}

/// Executes a validated [`IntervalDag`] on one thread, visiting intervals
/// in deterministic topological order (lowest available
/// `(timestamp, core)` first). With a total-order DAG this reproduces the
/// recorded schedule exactly; with a partial-order DAG it is one legal
/// linearization — the same one every time.
pub(crate) fn execute_sequential(
    programs: &[Program],
    dag: &IntervalDag<'_>,
    mut mem: MemImage,
    cost: &CostModel,
    mut trace: Option<&mut TraceRing>,
) -> Result<ReplayOutcome, ReplayError> {
    if dag.threads() != programs.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: dag.threads(),
        });
    }
    let order = dag.topo_order();
    if order.len() != dag.nodes().len() {
        // Unreachable for a constructor-validated DAG; kept typed so a
        // future constructor bug cannot silently truncate replay.
        return Err(ReplayError::CyclicOrdering {
            executed: order.len(),
            intervals: dag.nodes().len(),
        });
    }

    let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
    let mut traces: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
    let mut events = ReplayEvents::default();

    let mut last_global: Vec<Option<usize>> = vec![None; programs.len()];
    for (gi, &id) in order.iter().enumerate() {
        let node = &dag.nodes()[id];
        events.intervals += 1;
        let core = CoreId::new(node.core as u8);
        if let Some(t) = trace.as_deref_mut() {
            // The thread waited iff other threads' intervals ran since its
            // previous one (or before its first).
            let waited = match last_global[node.core] {
                Some(prev) => gi > prev + 1,
                None => gi > 0,
            };
            if waited {
                t.push(
                    node.timestamp,
                    TraceEvent::ReplayWait {
                        core: node.core as u8,
                        ordinal: node.ordinal as u64,
                        timestamp: node.timestamp,
                    },
                );
            }
        }
        exec_interval_ops(
            node.ops,
            core,
            &mut interps[node.core],
            &mut mem,
            &mut traces[node.core],
            &mut events,
        )?;
        if let Some(t) = trace.as_deref_mut() {
            t.push(
                node.timestamp,
                TraceEvent::ReplayRelease {
                    core: node.core as u8,
                    ordinal: node.ordinal as u64,
                    timestamp: node.timestamp,
                    loads_done: traces[node.core].len() as u64,
                },
            );
        }
        last_global[node.core] = Some(gi);
    }

    check_end_state(programs, &interps)?;

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok(ReplayOutcome {
        mem,
        load_traces: traces,
        events,
        user_cycles,
        os_cycles,
    })
}

/// Every thread must have reached its end: either halted, past the end of
/// its program, or parked exactly at a final `Halt`.
pub(crate) fn check_end_state(programs: &[Program], interps: &[Interp]) -> Result<(), ReplayError> {
    for (i, interp) in interps.iter().enumerate() {
        let at_end = interp.is_halted()
            || interp.pc() >= programs[i].len()
            || matches!(programs[i].get(interp.pc()), Some(Instr::Halt));
        if !at_end {
            return Err(ReplayError::IncompleteReplay {
                core: CoreId::new(i as u8),
            });
        }
    }
    Ok(())
}

/// The pre-DAG replayer, preserved verbatim as a differential baseline:
/// splits the logs into intervals itself, merges them into the recorded
/// total order with a stable sort by `(timestamp, core)` and executes the
/// merged schedule directly. The DAG-backed [`replay`] must produce
/// byte-identical outcomes — `tests/parallel_replay_engine.rs` holds the
/// differential test.
///
/// # Errors
///
/// Same as [`replay`].
pub fn replay_reference(
    programs: &[Program],
    logs: &[PatchedLog],
    mut mem: MemImage,
    cost: &CostModel,
) -> Result<ReplayOutcome, ReplayError> {
    if programs.len() != logs.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: logs.len(),
        });
    }
    // Validate core ids before any indexing: a corrupted log can claim an
    // arbitrary core and would otherwise panic on `interps[interval.core]`.
    for log in logs {
        if log.core.index() >= programs.len() {
            return Err(ReplayError::CoreOutOfRange {
                core: log.core.index(),
                threads: programs.len(),
            });
        }
    }
    // Split each core's ops into intervals and merge by (timestamp, core).
    struct IntervalRef<'a> {
        core: usize,
        ops: &'a [ReplayOp],
        timestamp: u64,
    }
    let mut schedule: Vec<IntervalRef> = Vec::new();
    for log in logs {
        let mut start = 0usize;
        for (i, op) in log.ops.iter().enumerate() {
            if let ReplayOp::EndInterval { timestamp, .. } = op {
                schedule.push(IntervalRef {
                    core: log.core.index(),
                    ops: &log.ops[start..i],
                    timestamp: *timestamp,
                });
                start = i + 1;
            }
        }
    }
    schedule.sort_by_key(|iv| (iv.timestamp, iv.core));

    let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
    let mut traces: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
    let mut events = ReplayEvents::default();

    for interval in &schedule {
        events.intervals += 1;
        let core = CoreId::new(interval.core as u8);
        exec_interval_ops(
            interval.ops,
            core,
            &mut interps[interval.core],
            &mut mem,
            &mut traces[interval.core],
            &mut events,
        )?;
    }

    check_end_state(programs, &interps)?;

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok(ReplayOutcome {
        mem,
        load_traces: traces,
        events,
        user_cycles,
        os_cycles,
    })
}

/// Errors from [`replay_sources`]: the log streams failed to decode/patch,
/// or the patched logs failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplaySourceError {
    /// Decoding or patching a per-core log stream failed.
    Patch(PatchSourceError),
    /// The patched logs are inconsistent with the programs.
    Replay(ReplayError),
}

impl fmt::Display for ReplaySourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplaySourceError::Patch(e) => write!(f, "{e}"),
            ReplaySourceError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplaySourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplaySourceError::Patch(e) => Some(e),
            ReplaySourceError::Replay(e) => Some(e),
        }
    }
}

impl From<PatchSourceError> for ReplaySourceError {
    fn from(e: PatchSourceError) -> Self {
        ReplaySourceError::Patch(e)
    }
}

impl From<ReplayError> for ReplaySourceError {
    fn from(e: ReplayError) -> Self {
        ReplaySourceError::Replay(e)
    }
}

/// Patches and replays directly from per-core [`LogSource`]s — the
/// record-once/replay-many path: each source can be a `ChunkedReader`
/// streaming an `.rrlog` file straight off disk.
///
/// # Errors
///
/// Returns [`ReplaySourceError::Patch`] if any stream is truncated,
/// corrupted, or unpatchable, and [`ReplaySourceError::Replay`] if the
/// decoded logs do not deterministically describe an execution of
/// `programs`.
pub fn replay_sources(
    programs: &[Program],
    sources: &mut [&mut dyn LogSource],
    mem: MemImage,
    cost: &CostModel,
) -> Result<ReplayOutcome, ReplaySourceError> {
    let logs = sources
        .iter_mut()
        .map(|s| patch_source(&mut **s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(replay(programs, &logs, mem, cost)?)
}

fn step_traced<M: Memory>(interp: &mut Interp, mem: &mut M, trace: &mut Vec<u64>) {
    match interp.step(mem) {
        StepEvent::Load { value, .. } => trace.push(value),
        StepEvent::Atomic { loaded, .. } => trace.push(loaded),
        _ => {}
    }
}

/// Executes one interval's ops (everything between two `EndInterval`s) on a
/// thread's interpreter — shared by every executor. Generic over [`Memory`]
/// so the sequential engines run against a plain [`MemImage`] while the
/// threaded engine runs against a [`rr_isa::SharedMemHandle`].
pub(crate) fn exec_interval_ops<M: Memory>(
    ops: &[ReplayOp],
    core: CoreId,
    interp: &mut Interp,
    mem: &mut M,
    trace: &mut Vec<u64>,
    events: &mut ReplayEvents,
) -> Result<(), ReplayError> {
    for op in ops {
        match *op {
            ReplayOp::RunBlock { instrs } => {
                events.blocks += 1;
                events.user_instrs += u64::from(instrs);
                let mut remaining = u64::from(instrs);
                while remaining > 0 {
                    let before = interp.retired();
                    step_traced(interp, mem, trace);
                    let delta = interp.retired() - before;
                    if delta == 0 {
                        // Stepping made no progress: the thread already
                        // halted but the block expected more.
                        return Err(ReplayError::BlockEndedEarly { core, remaining });
                    }
                    remaining -= delta;
                }
            }
            ReplayOp::InjectLoad { value } => {
                events.injected_loads += 1;
                let dst = match interp.current_instr() {
                    Some(Instr::Load { dst, .. }) => *dst,
                    other => {
                        return Err(ReplayError::InstructionMismatch {
                            core,
                            pc: interp.pc(),
                            expected: "load",
                            found: format!("{other:?}"),
                        })
                    }
                };
                interp.set_reg(dst, value);
                interp.skip();
                trace.push(value);
            }
            ReplayOp::ApplyStore { addr, value } => {
                events.applied_stores += 1;
                mem.store(addr, value);
            }
            ReplayOp::SkipStore => {
                events.skips += 1;
                match interp.current_instr() {
                    Some(Instr::Store { .. }) => interp.skip(),
                    other => {
                        return Err(ReplayError::InstructionMismatch {
                            core,
                            pc: interp.pc(),
                            expected: "store",
                            found: format!("{other:?}"),
                        })
                    }
                }
            }
            ReplayOp::InjectRmw { loaded } => {
                events.injected_rmws += 1;
                let dst = match interp.current_instr() {
                    Some(Instr::Atomic { dst, .. }) => *dst,
                    other => {
                        return Err(ReplayError::InstructionMismatch {
                            core,
                            pc: interp.pc(),
                            expected: "rmw",
                            found: format!("{other:?}"),
                        })
                    }
                };
                interp.set_reg(dst, loaded);
                interp.skip();
                trace.push(loaded);
            }
            ReplayOp::EndInterval { .. } => unreachable!("stripped by the scheduler"),
        }
    }
    Ok(())
}
