use core::fmt;

use relaxreplay::trace::{TraceEvent, TraceRing};
use rr_isa::MemImage;
use rr_mem::CoreId;

use crate::replayer::ReplayOutcome;

/// The observable outcome of a recorded execution, captured by the
/// simulator for verification: the final memory image and, per thread, the
/// value obtained by every load and RMW in program (retirement) order.
///
/// This is a *validation aid*, not part of the production log — a real
/// deployment only ships the interval log.
#[derive(Clone, Debug, Default)]
pub struct RecordedExecution {
    /// Final shared-memory contents.
    pub final_mem: MemImage,
    /// Per-thread load/RMW values in program order.
    pub load_traces: Vec<Vec<u64>>,
}

/// A divergence between the recorded execution and its replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The final memory images differ.
    MemoryMismatch,
    /// A thread replayed a different number of loads than recorded.
    TraceLengthMismatch {
        /// The diverging thread.
        core: CoreId,
        /// Loads recorded.
        recorded: usize,
        /// Loads replayed.
        replayed: usize,
    },
    /// A load obtained a different value during replay.
    TraceValueMismatch {
        /// The diverging thread.
        core: CoreId,
        /// Index of the load in program order.
        index: usize,
        /// Value during recording.
        recorded: u64,
        /// Value during replay.
        replayed: u64,
    },
    /// Thread counts differ.
    ThreadCountMismatch {
        /// Threads recorded.
        recorded: usize,
        /// Threads replayed.
        replayed: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MemoryMismatch => write!(f, "final memory images differ"),
            VerifyError::TraceLengthMismatch {
                core,
                recorded,
                replayed,
            } => write!(
                f,
                "{core}: recorded {recorded} loads but replayed {replayed}"
            ),
            VerifyError::TraceValueMismatch {
                core,
                index,
                recorded,
                replayed,
            } => write!(
                f,
                "{core}: load #{index} read {recorded:#x} when recorded but {replayed:#x} on replay"
            ),
            VerifyError::ThreadCountMismatch { recorded, replayed } => {
                write!(f, "{recorded} threads recorded, {replayed} replayed")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that a replay exactly reproduced the recorded execution: every
/// load of every thread read the same value, and the final memory is
/// identical. This is the determinism property RnR promises.
///
/// # Errors
///
/// Returns the first divergence found.
pub fn verify(recorded: &RecordedExecution, outcome: &ReplayOutcome) -> Result<(), VerifyError> {
    verify_traced(recorded, outcome, None)
}

/// Like [`verify`], but additionally captures progress into `trace` when
/// given: a `VerifyProgress` event after each thread's load trace checks
/// out, and a `Divergence` event (with the recorded and replayed values)
/// when a load value mismatch is found — the replay-side anchor divergence
/// forensics pivots on.
///
/// # Errors
///
/// Same as [`verify`].
pub fn verify_traced(
    recorded: &RecordedExecution,
    outcome: &ReplayOutcome,
    mut trace: Option<&mut TraceRing>,
) -> Result<(), VerifyError> {
    if recorded.load_traces.len() != outcome.load_traces.len() {
        return Err(VerifyError::ThreadCountMismatch {
            recorded: recorded.load_traces.len(),
            replayed: outcome.load_traces.len(),
        });
    }
    for (i, (rec, rep)) in recorded
        .load_traces
        .iter()
        .zip(&outcome.load_traces)
        .enumerate()
    {
        let core = CoreId::new(i as u8);
        for (j, (a, b)) in rec.iter().zip(rep).enumerate() {
            if a != b {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        i as u64,
                        TraceEvent::Divergence {
                            core: i as u8,
                            index: j as u64,
                            recorded: *a,
                            replayed: *b,
                        },
                    );
                }
                return Err(VerifyError::TraceValueMismatch {
                    core,
                    index: j,
                    recorded: *a,
                    replayed: *b,
                });
            }
        }
        if rec.len() != rep.len() {
            return Err(VerifyError::TraceLengthMismatch {
                core,
                recorded: rec.len(),
                replayed: rep.len(),
            });
        }
        if let Some(t) = trace.as_deref_mut() {
            t.push(
                i as u64,
                TraceEvent::VerifyProgress {
                    core: i as u8,
                    loads_checked: rec.len() as u64,
                },
            );
        }
    }
    if !recorded.final_mem.contents_eq(&outcome.mem) {
        return Err(VerifyError::MemoryMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ReplayEvents;

    fn outcome(traces: Vec<Vec<u64>>, mem: MemImage) -> ReplayOutcome {
        ReplayOutcome {
            mem,
            load_traces: traces,
            events: ReplayEvents::default(),
            user_cycles: 0,
            os_cycles: 0,
        }
    }

    #[test]
    fn identical_executions_verify() {
        let mut mem = MemImage::new();
        mem.store(0, 1);
        let rec = RecordedExecution {
            final_mem: mem.clone(),
            load_traces: vec![vec![1, 2, 3]],
        };
        verify(&rec, &outcome(vec![vec![1, 2, 3]], mem)).expect("must verify");
    }

    #[test]
    fn value_divergence_is_reported() {
        let rec = RecordedExecution {
            final_mem: MemImage::new(),
            load_traces: vec![vec![1, 2, 3]],
        };
        let err =
            verify(&rec, &outcome(vec![vec![1, 9, 3]], MemImage::new())).expect_err("must fail");
        assert_eq!(
            err,
            VerifyError::TraceValueMismatch {
                core: CoreId::new(0),
                index: 1,
                recorded: 2,
                replayed: 9
            }
        );
    }

    #[test]
    fn memory_divergence_is_reported() {
        let mut mem = MemImage::new();
        mem.store(8, 5);
        let rec = RecordedExecution {
            final_mem: mem,
            load_traces: vec![],
        };
        assert_eq!(
            verify(&rec, &outcome(vec![], MemImage::new())),
            Err(VerifyError::MemoryMismatch)
        );
    }

    #[test]
    fn length_divergence_is_reported() {
        let rec = RecordedExecution {
            final_mem: MemImage::new(),
            load_traces: vec![vec![1]],
        };
        assert!(matches!(
            verify(&rec, &outcome(vec![vec![]], MemImage::new())),
            Err(VerifyError::TraceLengthMismatch { .. })
        ));
    }
}
