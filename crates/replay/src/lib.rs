//! # rr-replay — deterministic replay of RelaxReplay logs
//!
//! Turns the interval logs produced by the `relaxreplay` recorder into a
//! deterministic re-execution (paper §3.5):
//!
//! 1. [`patch`] performs the off-line **patching step** of §3.3.2: every
//!    `ReorderedStore` entry moves back `offset` intervals to where the
//!    store *performed*, leaving a dummy at the position where it was
//!    *counted*.
//! 2. [`replay`] emulates the OS control module: it merges all processors'
//!    intervals into the recorded total order, runs `InorderBlock`s
//!    natively (with an instruction-count interrupt, stood in for by the
//!    `rr-isa` interpreter's budgeted `run`), injects logged values for
//!    reordered loads, applies patched stores, and skips dummies.
//! 3. [`verify`] proves determinism: every load of every thread must read
//!    exactly the value it read during recording, and the final memory
//!    images must match.
//! 4. [`CostModel`] estimates replay time (user vs. OS cycles) to
//!    reproduce the paper's Figure 13.
//!
//! The patcher and replayer are *streaming* consumers: [`patch_source`]
//! and [`replay_sources`] accept any `LogSource` (an in-memory
//! `MemorySource` or a `ChunkedReader` decoding an `.rrlog` file straight
//! off disk), so a recording saved with `--save-logs` can be replayed by a
//! later invocation without the recorder in the loop.
//!
//! ```
//! use relaxreplay::{IntervalLog, LogEntry};
//! use rr_isa::{MemImage, ProgramBuilder, Reg};
//! use rr_replay::{patch, replay, CostModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A trivial one-thread "recording": two instructions, one interval.
//! let mut b = ProgramBuilder::new();
//! b.load_imm(Reg::new(1), 7);
//! b.halt();
//! let program = b.build();
//! let log = IntervalLog {
//!     core: rr_mem::CoreId::new(0),
//!     entries: vec![
//!         LogEntry::InorderBlock { instrs: 2 },
//!         LogEntry::IntervalFrame { cisn: 0, timestamp: 10 },
//!     ],
//! };
//! let patched = patch(&log)?;
//! let outcome = replay(
//!     std::slice::from_ref(&program),
//!     std::slice::from_ref(&patched),
//!     MemImage::new(),
//!     &CostModel::splash_default(),
//! )?;
//! assert_eq!(outcome.events.user_instrs, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
pub mod dag;
mod engine;
pub mod forensics;
mod ingest;
pub mod oracle;
mod parallel;
mod patch;
pub mod prof;
mod replayer;
mod verify;

pub use cost::{CostModel, ReplayEvents};
pub use dag::{DagStats, IntervalDag, IntervalNode};
pub use engine::{execute_threaded, replay_threaded, replay_with, ReplayEngine};
pub use forensics::divergence_report;
pub use ingest::{
    decode_chunked_parallel, decode_logs_parallel, default_ingest_workers, read_rrlogs_parallel,
    IngestError,
};
pub use oracle::{cross_check, minimize, DifferentialError, Shrink};
pub use parallel::{execute_modeled, replay_parallel, ParallelOutcome};
pub use patch::{patch, patch_source, PatchError, PatchSourceError, PatchedLog, ReplayOp};
pub use prof::{
    critical_path_blame, execute_threaded_profiled, prof_json, replay_threaded_profiled,
    BlameReport, PathInterval, ProfEntry, BLAME_KINDS,
};
pub use replayer::{
    replay, replay_reference, replay_sources, replay_traced, ReplayError, ReplayOutcome,
    ReplaySourceError,
};
pub use verify::{verify, verify_traced, RecordedExecution, VerifyError};
