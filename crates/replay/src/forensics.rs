//! Divergence forensics: when verification finds a replay divergence,
//! turn the record- and replay-side event timelines into a human-readable
//! markdown report (`divergence.md`) that shows *where* the two executions
//! disagreed and what each side was doing around that point.
//!
//! Anchoring works as follows. On the record side, counting events fire in
//! program (retirement) order, so the `index`-th `Count` event of kind
//! `Load`/`Rmw` in the divergent core's ring corresponds exactly to load
//! index `index` of the verified trace — and it carries the access's
//! address and classification verdict. On the replay side, every
//! `ReplayRelease` event carries the thread's cumulative replayed load
//! count (`loads_done`), so the first release with `loads_done > index` is
//! the interval that replayed the divergent load.

use std::fmt::Write as _;

use relaxreplay::trace::{TraceEvent, TraceRing};
use relaxreplay::{CountVerdict, RunTrace};
use rr_mem::AccessKind;

use crate::replayer::ReplayOutcome;
use crate::verify::{RecordedExecution, VerifyError};

/// How many events to show on each side of an anchor by default.
pub const DEFAULT_WINDOW: usize = 16;

fn write_window(out: &mut String, ring: &TraceRing, anchor: Option<usize>, window: usize) {
    let records = ring.records();
    if records.is_empty() {
        out.push_str("*(no events captured)*\n");
        return;
    }
    let (lo, hi, mark) = match anchor {
        Some(i) => (
            i.saturating_sub(window),
            (i + window + 1).min(records.len()),
            Some(i),
        ),
        // No anchor: show the tail, which ends nearest the failure.
        None => (
            records.len().saturating_sub(2 * window),
            records.len(),
            None,
        ),
    };
    out.push_str("```text\n");
    if lo > 0 || ring.dropped() > 0 {
        let _ = writeln!(
            out,
            "... ({} earlier events{})",
            lo as u64 + ring.dropped(),
            if ring.dropped() > 0 {
                " incl. ring-evicted"
            } else {
                ""
            }
        );
    }
    for (i, r) in records.iter().enumerate().take(hi).skip(lo) {
        let marker = if Some(i) == mark { ">>> " } else { "    " };
        let _ = writeln!(out, "{marker}[{:>10}] {}", r.cycle, r.event);
    }
    if hi < records.len() {
        let _ = writeln!(out, "... ({} later events)", records.len() - hi);
    }
    out.push_str("```\n");
}

/// Position of the `index`-th counted load/RMW in a record-side ring —
/// counting events fire in program order, so this is the divergent load's
/// counting event. `None` if it was evicted from the ring (or tracing ran
/// below the `accesses` level).
fn record_anchor(ring: &TraceRing, index: u64) -> Option<usize> {
    let mut loads = 0u64;
    for (i, r) in ring.records().iter().enumerate() {
        if let TraceEvent::Count { kind, .. } = r.event {
            if matches!(kind, AccessKind::Load | AccessKind::Rmw) {
                if loads == index {
                    return Some(i);
                }
                loads += 1;
            }
        }
    }
    None
}

/// Position of the replay-side `ReplayRelease` whose interval replayed
/// load `index` of thread `core`.
fn replay_anchor(ring: &TraceRing, core: u8, index: u64) -> Option<usize> {
    ring.records().iter().position(|r| {
        matches!(
            r.event,
            TraceEvent::ReplayRelease {
                core: c,
                loads_done,
                ..
            } if c == core && loads_done > index
        )
    })
}

/// Builds a markdown divergence report from the verification error and the
/// two timelines: the recording's [`RunTrace`] and the replay/verify ring.
/// `window` bounds how many events are shown on each side of an anchor.
#[must_use]
pub fn divergence_report(
    err: &VerifyError,
    recorded: &RecordedExecution,
    outcome: &ReplayOutcome,
    record_trace: &RunTrace,
    replay_trace: &TraceRing,
    window: usize,
) -> String {
    let mut out = String::new();
    out.push_str("# Replay divergence report\n\n");
    let _ = writeln!(out, "**Verdict:** {err}\n");

    match *err {
        VerifyError::TraceValueMismatch {
            core,
            index,
            recorded: rec_val,
            replayed: rep_val,
        } => {
            let c = core.index();
            let _ = writeln!(
                out,
                "Thread {core}, load #{index} (program order): recorded \
                 `{rec_val:#x}`, replayed `{rep_val:#x}`.\n"
            );
            let record_ring = record_trace.cores.get(c);
            let anchor = record_ring.and_then(|r| record_anchor(r, index as u64));
            if let Some(ring) = record_ring {
                if let Some(i) = anchor {
                    if let TraceEvent::Count {
                        seq,
                        addr,
                        pisn,
                        cisn,
                        verdict,
                        ..
                    } = ring.records()[i].event
                    {
                        let _ = writeln!(
                            out,
                            "During recording this was seq {seq}, addr `{addr:#x}`, \
                             performed in interval {pisn} and counted in interval \
                             {cisn} ({}{}).\n",
                            verdict.name(),
                            if verdict == CountVerdict::InOrder {
                                ""
                            } else {
                                " — a candidate for mis-patching"
                            }
                        );
                    }
                } else {
                    out.push_str(
                        "The divergent load's counting event is not in the record \
                         ring (evicted, or tracing ran below the `accesses` \
                         level); showing the timeline tail instead.\n\n",
                    );
                }
                let _ = writeln!(out, "## Record timeline ({core})\n");
                write_window(&mut out, ring, anchor, window);
            }
            let _ = writeln!(out, "\n## Replay timeline\n");
            write_window(
                &mut out,
                replay_trace,
                replay_anchor(replay_trace, c as u8, index as u64),
                window,
            );
        }
        VerifyError::TraceLengthMismatch {
            core,
            recorded: rec_len,
            replayed: rep_len,
        } => {
            let c = core.index();
            let _ = writeln!(
                out,
                "Thread {core} recorded {rec_len} loads but replayed {rep_len} — \
                 the executions took different paths. Timeline tails:\n"
            );
            if let Some(ring) = record_trace.cores.get(c) {
                let _ = writeln!(out, "## Record timeline ({core})\n");
                write_window(&mut out, ring, None, window);
            }
            let _ = writeln!(out, "\n## Replay timeline\n");
            write_window(&mut out, replay_trace, None, window);
        }
        VerifyError::MemoryMismatch => {
            let diffs = diff_memory(recorded, outcome, 16);
            out.push_str(
                "Load traces matched but the final memory images differ — a \
                 store was misapplied (or a patched store landed at the wrong \
                 point).\n\n## First differing cells\n\n```text\n",
            );
            for (addr, a, b) in &diffs {
                let _ = writeln!(out, "[{addr:#x}] recorded {a:#x}, replayed {b:#x}");
            }
            out.push_str("```\n");
            for (i, ring) in record_trace.cores.iter().enumerate() {
                let _ = writeln!(out, "\n## Record timeline (P{i}) tail\n");
                write_window(&mut out, ring, None, window);
            }
            let _ = writeln!(out, "\n## Replay timeline\n");
            write_window(&mut out, replay_trace, None, window);
        }
        VerifyError::ThreadCountMismatch { recorded, replayed } => {
            let _ = writeln!(
                out,
                "{recorded} threads recorded but {replayed} replayed — the run \
                 setup itself is inconsistent; no per-thread timeline applies.\n"
            );
        }
    }
    out
}

/// First differing `(addr, recorded, replayed)` cells between the two
/// final memory images, up to `limit`.
fn diff_memory(
    recorded: &RecordedExecution,
    outcome: &ReplayOutcome,
    limit: usize,
) -> Vec<(u64, u64, u64)> {
    let mut cells: Vec<(u64, u64, u64)> = Vec::new();
    let mut addrs: Vec<u64> = recorded
        .final_mem
        .iter()
        .map(|(a, _)| a)
        .chain(outcome.mem.iter().map(|(a, _)| a))
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    for addr in addrs {
        let a = recorded.final_mem.load(addr);
        let b = outcome.mem.load(addr);
        if a != b {
            cells.push((addr, a, b));
            if cells.len() == limit {
                break;
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxreplay::trace::TraceConfig;
    use rr_mem::CoreId;

    use crate::cost::ReplayEvents;
    use rr_isa::MemImage;

    fn outcome(traces: Vec<Vec<u64>>, mem: MemImage) -> ReplayOutcome {
        ReplayOutcome {
            mem,
            load_traces: traces,
            events: ReplayEvents::default(),
            user_cycles: 0,
            os_cycles: 0,
        }
    }

    #[test]
    fn value_mismatch_report_anchors_both_sides() {
        let cfg = TraceConfig::full();
        let mut record_trace = RunTrace::new(1, &cfg);
        // Three counted loads; load #1 will diverge.
        for (i, addr) in [0x100u64, 0x108, 0x110].iter().enumerate() {
            record_trace.cores[0].push(
                10 + i as u64,
                TraceEvent::Count {
                    seq: i as u64,
                    kind: AccessKind::Load,
                    addr: *addr,
                    pisn: 0,
                    cisn: 0,
                    verdict: CountVerdict::InOrder,
                },
            );
        }
        let mut replay_ring = TraceRing::new(CoreId::new(u8::MAX), &cfg);
        replay_ring.push(
            5,
            TraceEvent::ReplayRelease {
                core: 0,
                ordinal: 0,
                timestamp: 5,
                loads_done: 3,
            },
        );
        let err = VerifyError::TraceValueMismatch {
            core: CoreId::new(0),
            index: 1,
            recorded: 2,
            replayed: 9,
        };
        let recorded = RecordedExecution {
            final_mem: MemImage::new(),
            load_traces: vec![vec![1, 2, 3]],
        };
        let report = divergence_report(
            &err,
            &recorded,
            &outcome(vec![vec![1, 9, 3]], MemImage::new()),
            &record_trace,
            &replay_ring,
            4,
        );
        assert!(report.contains("Record timeline"), "{report}");
        assert!(report.contains("Replay timeline"), "{report}");
        assert!(report.contains("addr `0x108`"), "{report}");
        assert!(report.contains(">>> "), "anchors are marked: {report}");
        assert!(report.contains("3 loads done"), "{report}");
    }

    #[test]
    fn memory_mismatch_report_lists_cells() {
        let cfg = TraceConfig::full();
        let record_trace = RunTrace::new(1, &cfg);
        let replay_ring = TraceRing::new(CoreId::new(u8::MAX), &cfg);
        let mut mem = MemImage::new();
        mem.store(0x40, 7);
        let recorded = RecordedExecution {
            final_mem: mem,
            load_traces: vec![],
        };
        let report = divergence_report(
            &VerifyError::MemoryMismatch,
            &recorded,
            &outcome(vec![], MemImage::new()),
            &record_trace,
            &replay_ring,
            4,
        );
        assert!(
            report.contains("[0x40] recorded 0x7, replayed 0x0"),
            "{report}"
        );
    }
}
