//! `rr_prof` — profiling the replay engine itself: critical-path blame
//! over the interval DAG and a span-instrumented twin of the threaded
//! executor.
//!
//! Two questions this module answers that nothing else in the system can:
//!
//! * **Where does *modeled* replay time go?** [`critical_path_blame`]
//!   walks the weighted critical path of an [`IntervalDag`] under a
//!   [`CostModel`] and attributes the entire makespan to intervals, cores,
//!   and op kinds. Attribution is *exact*: consecutive path nodes chain
//!   start-to-finish, so the per-interval cycle weights along the path sum
//!   to precisely the makespan (coverage 100%, against the ≥95% floor the
//!   `rr-prof/v1` schema enforces).
//! * **Where does *measured* replay time go?** [`execute_threaded_profiled`]
//!   is a span-instrumented twin of
//!   [`execute_threaded`](crate::execute_threaded): same queue, same
//!   locks, same execution — plus per-worker timelines (exec / queue-pop /
//!   dep-wait / idle), ready-heap depth samples, lock counters, and
//!   first-error latency, returned as an
//!   [`EngineProf`](relaxreplay::prof::EngineProf). The production
//!   executor is left byte-for-byte untouched, so profiling *off* is
//!   zero-cost by construction; `tests/observability.rs` proves the
//!   profiled twin's outcomes identical.
//!
//! Results serialize to the `<slug>.prof.json` sidecar (schema
//! `rr-prof/v1`, [`prof_json`]) written next to the trace/metrics
//! sidecars, and to per-worker Perfetto timelines via
//! [`relaxreplay::prof::engine_chrome_trace`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use relaxreplay::prof::{EngineProf, SpanKind, WorkerProf, PROF_SCHEMA};
use relaxreplay::trace::json;
use relaxreplay::IntervalOrdering;
use rr_isa::{Interp, MemImage, Program, SharedMem};
use rr_mem::CoreId;

use crate::cost::{CostModel, ReplayEvents};
use crate::dag::IntervalDag;
use crate::patch::PatchedLog;
use crate::replayer::{check_end_state, exec_interval_ops, ReplayError, ReplayOutcome};

/// Cycle-cost kinds the blame report decomposes the critical path into.
/// `user` is native block execution; the rest are the OS control-module
/// costs of [`CostModel`].
pub const BLAME_KINDS: [&str; 7] = [
    "user",
    "interval",
    "block",
    "inject-load",
    "apply-store",
    "skip-store",
    "inject-rmw",
];

/// One interval on the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathInterval {
    /// DAG node id.
    pub node: usize,
    /// Core the interval ran on.
    pub core: usize,
    /// Interval ordinal within its core's log.
    pub ordinal: usize,
    /// Recorded global timestamp.
    pub timestamp: u64,
    /// Modeled replay cycles of this interval.
    pub cycles: u64,
}

/// Critical-path blame: the modeled makespan of an [`IntervalDag`]
/// attributed to intervals, cores, and op kinds.
#[derive(Clone, Debug, Default)]
pub struct BlameReport {
    /// Modeled makespan: the weight of the heaviest dependency chain —
    /// the floor no worker count can beat.
    pub makespan_cycles: u64,
    /// Total modeled work across all intervals (= sequential replay time).
    pub total_work_cycles: u64,
    /// The critical path, as DAG node ids in execution order.
    pub path: Vec<usize>,
    /// Cycles attributed to each core (index = core id) along the path.
    pub per_core: Vec<u64>,
    /// Cycles attributed to each [`BLAME_KINDS`] entry along the path.
    pub per_kind: Vec<(&'static str, u64)>,
    /// The heaviest path intervals, descending by cycles (at most 10).
    pub top_intervals: Vec<PathInterval>,
    /// Cycles the path accounts for — equal to `makespan_cycles` by
    /// construction.
    pub attributed_cycles: u64,
}

impl BlameReport {
    /// Share of the makespan the path attribution explains, in percent
    /// (100.0 for a non-degenerate report; the sidecar schema requires
    /// ≥95).
    #[must_use]
    pub fn coverage_pct(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 100.0;
        }
        self.attributed_cycles as f64 / self.makespan_cycles as f64 * 100.0
    }

    /// Ideal parallel speedup over sequential replay
    /// (`total_work / makespan`).
    #[must_use]
    pub fn ideal_speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 1.0;
        }
        self.total_work_cycles as f64 / self.makespan_cycles as f64
    }

    /// Renders as the `"blame"` JSON object of a prof-sidecar entry.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"makespan_cycles\":{},\"total_work_cycles\":{},\"attributed_cycles\":{},\"path_intervals\":{}",
            self.makespan_cycles,
            self.total_work_cycles,
            self.attributed_cycles,
            self.path.len()
        );
        s.push_str(",\"per_core\":[");
        for (core, cycles) in self.per_core.iter().enumerate() {
            if core > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"core\":{core},\"cycles\":{cycles}}}");
        }
        s.push_str("],\"per_kind\":[");
        for (i, (kind, cycles)) in self.per_kind.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"kind\":{},\"cycles\":{cycles}}}", json::escape(kind));
        }
        s.push_str("],\"top_intervals\":[");
        for (i, t) in self.top_intervals.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"node\":{},\"core\":{},\"ordinal\":{},\"timestamp\":{},\"cycles\":{}}}",
                t.node, t.core, t.ordinal, t.timestamp, t.cycles
            );
        }
        s.push_str("]}");
        s
    }
}

/// Computes critical-path blame for a validated DAG under a cost model.
///
/// The critical path is the heaviest chain under per-interval weights
/// from [`CostModel::interval_cycles`] — the same weights the cost-model
/// scheduler ([`crate::execute_modeled`]) uses, so the makespan here is
/// exactly that scheduler's infinite-worker makespan. Ties (equal-weight
/// predecessors, equal-finish sinks) break toward smaller node ids, so
/// the report is deterministic.
#[must_use]
pub fn critical_path_blame(dag: &IntervalDag<'_>, cost: &CostModel) -> BlameReport {
    let nodes = dag.nodes();
    let mut report = BlameReport {
        per_core: vec![0; dag.threads()],
        per_kind: BLAME_KINDS.iter().map(|&k| (k, 0)).collect(),
        ..BlameReport::default()
    };
    if nodes.is_empty() {
        return report;
    }
    let weights: Vec<u64> = nodes.iter().map(|n| cost.interval_cycles(n.ops)).collect();
    report.total_work_cycles = weights.iter().sum();

    // Weighted longest path: process in topological order, pushing each
    // node's finish time to its successors and remembering the argmax
    // predecessor so the path can be walked back afterwards.
    let mut start = vec![0u64; nodes.len()];
    let mut from: Vec<Option<usize>> = vec![None; nodes.len()];
    for &i in &dag.topo_order() {
        let finish = start[i] + weights[i];
        for &s in &nodes[i].succs {
            let better = finish > start[s]
                || (finish == start[s] && from[s].is_none_or(|p| i < p) && finish > 0);
            if better {
                start[s] = finish;
                from[s] = Some(i);
            }
        }
    }
    let end = (0..nodes.len())
        .max_by_key(|&i| (start[i] + weights[i], Reverse(i)))
        .expect("non-empty DAG");
    report.makespan_cycles = start[end] + weights[end];

    let mut cur = Some(end);
    while let Some(i) = cur {
        report.path.push(i);
        cur = from[i];
    }
    report.path.reverse();

    for &i in &report.path {
        let n = &nodes[i];
        let ev = ReplayEvents::for_interval(n.ops);
        report.attributed_cycles += weights[i];
        report.per_core[n.core] += weights[i];
        // Kind decomposition per path node, with the per-node user-cycle
        // ceil — so the kind cycles sum exactly to the node weight and
        // the kinds overall to the makespan.
        let kinds = [
            cost.user_cycles(&ev),
            ev.intervals * cost.os_per_interval,
            ev.blocks * cost.os_per_block,
            ev.injected_loads * cost.os_per_injected_load,
            ev.applied_stores * cost.os_per_applied_store,
            ev.skips * cost.os_per_skip,
            ev.injected_rmws * cost.os_per_injected_rmw,
        ];
        for (slot, cycles) in report.per_kind.iter_mut().zip(kinds) {
            slot.1 += cycles;
        }
        report.top_intervals.push(PathInterval {
            node: i,
            core: n.core,
            ordinal: n.ordinal,
            timestamp: n.timestamp,
            cycles: weights[i],
        });
    }
    report
        .top_intervals
        .sort_by_key(|t| (Reverse(t.cycles), t.node));
    report.top_intervals.truncate(10);
    report
}

/// One run × variant entry of a `.prof.json` sidecar.
#[derive(Clone, Debug)]
pub struct ProfEntry {
    /// Workload / run name.
    pub run: String,
    /// Recorder variant label (`Opt-4K`, …).
    pub variant: String,
    /// Critical-path blame for the variant's DAG.
    pub blame: BlameReport,
    /// Measured engine profile, when a profiled replay was performed.
    pub engine: Option<EngineProf>,
}

/// Serializes prof entries as an `rr-prof/v1` sidecar document — the
/// format [`relaxreplay::prof::validate_prof_json`] checks.
#[must_use]
pub fn prof_json(entries: &[ProfEntry]) -> String {
    let mut s = format!("{{\"schema\":{},\"entries\":[", json::escape(PROF_SCHEMA));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"run\":{},\"variant\":{},\"blame\":{}",
            json::escape(&e.run),
            json::escape(&e.variant),
            e.blame.to_json()
        );
        match &e.engine {
            Some(p) => {
                let _ = write!(s, ",\"engine\":{}", p.summary_json());
            }
            None => s.push_str(",\"engine\":null"),
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

struct CoreState<'p> {
    interp: Interp<'p>,
    trace: Vec<u64>,
    events: ReplayEvents,
}

struct Queue {
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    executed: usize,
    done: bool,
}

/// [`crate::replay_threaded`] with engine profiling: replays the recorded
/// partial order on `workers` OS threads, returning the outcome *and* the
/// per-worker profile.
///
/// # Errors
///
/// As [`crate::replay_threaded`].
pub fn replay_threaded_profiled(
    programs: &[Program],
    logs: &[PatchedLog],
    orderings: Option<&[IntervalOrdering]>,
    mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<(ReplayOutcome, EngineProf), ReplayError> {
    let dag = match orderings {
        Some(o) => IntervalDag::partial_order(programs.len(), logs, o)?,
        None => IntervalDag::total_order(programs.len(), logs)?,
    };
    execute_threaded_profiled(programs, &dag, mem, cost, workers)
}

/// The span-instrumented twin of [`crate::execute_threaded`]: same ready
/// heap, same locks, same interval execution — every worker additionally
/// records its span timeline (exec / queue-pop / dep-wait / idle),
/// ready-heap depth at each pop, lock-acquisition counters, and the
/// latency to the first replay error.
///
/// The production executor is not touched by this instrumentation (it is
/// a separate function), so disabled profiling costs nothing; the twin's
/// outcome is identical to the production executor's on every input
/// (asserted across the litmus suite by `tests/observability.rs`).
///
/// # Errors
///
/// As [`crate::execute_threaded`].
pub fn execute_threaded_profiled(
    programs: &[Program],
    dag: &IntervalDag<'_>,
    mem: MemImage,
    cost: &CostModel,
    workers: usize,
) -> Result<(ReplayOutcome, EngineProf), ReplayError> {
    if dag.threads() != programs.len() {
        return Err(ReplayError::ThreadCountMismatch {
            programs: programs.len(),
            logs: dag.threads(),
        });
    }
    let nodes = dag.nodes();
    let shared = SharedMem::from_image(&mem);
    drop(mem);

    let cores: Vec<Mutex<CoreState>> = programs
        .iter()
        .map(|p| {
            Mutex::new(CoreState {
                interp: Interp::new(p),
                trace: Vec::new(),
                events: ReplayEvents::default(),
            })
        })
        .collect();
    let deps: Vec<AtomicUsize> = nodes.iter().map(|n| AtomicUsize::new(n.preds)).collect();
    let queue = Mutex::new(Queue {
        ready: nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.preds == 0)
            .map(|(i, n)| Reverse((n.timestamp, i)))
            .collect(),
        executed: 0,
        done: nodes.is_empty(),
    });
    let cond = Condvar::new();
    let error: Mutex<Option<ReplayError>> = Mutex::new(None);
    let profs: Mutex<Vec<WorkerProf>> = Mutex::new(Vec::new());
    // Earliest error instant, ns since t0; u64::MAX = no error yet.
    let first_error_ns = AtomicU64::new(u64::MAX);
    let t0 = Instant::now();

    let pool = workers.clamp(1, nodes.len().max(1));
    std::thread::scope(|s| {
        for widx in 0..pool {
            let (queue, cond, error, cores, deps, profs, shared, first_error_ns) = (
                &queue,
                &cond,
                &error,
                &cores,
                &deps,
                &profs,
                &shared,
                &first_error_ns,
            );
            s.spawn(move || {
                let now = || t0.elapsed().as_nanos() as u64;
                let mut wp = WorkerProf::new(widx);
                let mut memh = shared.handle();
                'work: loop {
                    let span_begin = now();
                    let node = {
                        wp.queue_locks += 1;
                        let mut q = queue.lock().expect("replay queue poisoned");
                        let mut span_begin = span_begin;
                        loop {
                            if q.done {
                                drop(q);
                                wp.push_span(SpanKind::Idle, span_begin, now() - span_begin, 0, 0);
                                break 'work;
                            }
                            if let Some(Reverse((_, id))) = q.ready.pop() {
                                wp.heap_depth.push((q.ready.len() + 1) as u32);
                                wp.push_span(
                                    SpanKind::QueuePop,
                                    span_begin,
                                    now() - span_begin,
                                    0,
                                    0,
                                );
                                break id;
                            }
                            let wait_begin = now();
                            q = cond.wait(q).expect("replay queue poisoned");
                            // A wake into shutdown was idle time, not a
                            // dependency stall; classify at resolution.
                            if q.done {
                                drop(q);
                                wp.push_span(SpanKind::Idle, wait_begin, now() - wait_begin, 0, 0);
                                break 'work;
                            }
                            wp.push_span(SpanKind::DepWait, wait_begin, now() - wait_begin, 0, 0);
                            span_begin = now();
                        }
                    };
                    let n = &nodes[node];
                    let exec_begin = now();
                    let result = {
                        wp.core_locks += 1;
                        let mut cs = match cores[n.core].try_lock() {
                            Ok(g) => g,
                            Err(_) => {
                                wp.core_locks_contended += 1;
                                cores[n.core].lock().expect("core state poisoned")
                            }
                        };
                        cs.events.intervals += 1;
                        let CoreState {
                            interp,
                            trace,
                            events,
                        } = &mut *cs;
                        exec_interval_ops(
                            n.ops,
                            CoreId::new(n.core as u8),
                            interp,
                            &mut memh,
                            trace,
                            events,
                        )
                    };
                    wp.push_span(
                        SpanKind::Exec,
                        exec_begin,
                        now() - exec_begin,
                        n.core as u32,
                        node as u64,
                    );
                    wp.executed += 1;
                    match result {
                        Err(e) => {
                            first_error_ns.fetch_min(now(), Ordering::Relaxed);
                            let mut slot = error.lock().expect("error slot poisoned");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            drop(slot);
                            let mut q = queue.lock().expect("replay queue poisoned");
                            q.done = true;
                            drop(q);
                            cond.notify_all();
                            break 'work;
                        }
                        Ok(()) => {
                            let mut newly_ready = Vec::new();
                            for &succ in &n.succs {
                                if deps[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    newly_ready.push(succ);
                                }
                            }
                            wp.queue_locks += 1;
                            let mut q = queue.lock().expect("replay queue poisoned");
                            q.executed += 1;
                            if q.executed == nodes.len() {
                                q.done = true;
                            }
                            for id in newly_ready {
                                q.ready.push(Reverse((nodes[id].timestamp, id)));
                            }
                            let wake = q.done || !q.ready.is_empty();
                            drop(q);
                            if wake {
                                cond.notify_all();
                            }
                        }
                    }
                }
                profs.lock().expect("prof sink poisoned").push(wp);
            });
        }
    });

    let mut prof = EngineProf {
        workers: profs.into_inner().expect("prof sink poisoned"),
        wall_ns: t0.elapsed().as_nanos() as u64,
        nodes: nodes.len(),
        first_error_ns: match first_error_ns.into_inner() {
            u64::MAX => None,
            ns => Some(ns),
        },
    };
    prof.workers.sort_by_key(|w| w.worker);

    if let Some(e) = error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let q = queue.into_inner().expect("replay queue poisoned");
    if q.executed != nodes.len() {
        return Err(ReplayError::CyclicOrdering {
            executed: q.executed,
            intervals: nodes.len(),
        });
    }

    let mut interps = Vec::with_capacity(cores.len());
    let mut traces = Vec::with_capacity(cores.len());
    let mut events = ReplayEvents::default();
    for c in cores {
        let cs = c.into_inner().expect("core state poisoned");
        events.merge(&cs.events);
        traces.push(cs.trace);
        interps.push(cs.interp);
    }
    check_end_state(programs, &interps)?;

    let user_cycles = cost.user_cycles(&events);
    let os_cycles = cost.os_cycles(&events);
    Ok((
        ReplayOutcome {
            mem: shared.to_image(),
            load_traces: traces,
            events,
            user_cycles,
            os_cycles,
        },
        prof,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::patch;
    use relaxreplay::{IntervalLog, LogEntry};
    use rr_isa::{ProgramBuilder, Reg};

    /// Two independent one-interval threads: core 0 stores 7 to its own
    /// word, core 1 stores 9 — no communication, so any interleaving is a
    /// correct replay.
    fn tiny_two_core() -> (Vec<Program>, Vec<PatchedLog>) {
        let mk = |value: i64, addr: i64| {
            let mut b = ProgramBuilder::new();
            b.load_imm(Reg::new(1), value);
            b.load_imm(Reg::new(2), addr);
            b.store(Reg::new(1), Reg::new(2), 0);
            b.halt();
            b.build()
        };
        let programs = vec![mk(7, 0x100), mk(9, 0x200)];
        let logs: Vec<PatchedLog> = (0..2u8)
            .map(|c| {
                patch(&IntervalLog {
                    core: CoreId::new(c),
                    entries: vec![
                        LogEntry::InorderBlock { instrs: 4 },
                        LogEntry::IntervalFrame {
                            cisn: 0,
                            timestamp: 10 + u64::from(c),
                        },
                    ],
                })
                .expect("patches")
            })
            .collect();
        (programs, logs)
    }

    #[test]
    fn blame_attributes_exactly_the_makespan() {
        let (programs, logs) = tiny_two_core();
        let dag = IntervalDag::total_order(programs.len(), &logs).expect("builds");
        let cost = CostModel::splash_default();
        let blame = critical_path_blame(&dag, &cost);

        // Total order chains both intervals: makespan == total work.
        assert_eq!(blame.makespan_cycles, blame.total_work_cycles);
        assert_eq!(blame.attributed_cycles, blame.makespan_cycles);
        assert_eq!(blame.path.len(), 2);
        assert_eq!(blame.per_core.iter().sum::<u64>(), blame.makespan_cycles);
        assert_eq!(
            blame.per_kind.iter().map(|(_, c)| c).sum::<u64>(),
            blame.makespan_cycles,
            "kind decomposition must be exact"
        );
        assert!((blame.coverage_pct() - 100.0).abs() < f64::EPSILON);
        assert_eq!(blame.top_intervals.len(), 2);
        assert!(blame.top_intervals[0].cycles >= blame.top_intervals[1].cycles);
    }

    #[test]
    fn profiled_executor_matches_production() {
        let (programs, logs) = tiny_two_core();
        let cost = CostModel::splash_default();
        let dag = IntervalDag::total_order(programs.len(), &logs).expect("builds");
        let plain =
            crate::execute_threaded(&programs, &dag, MemImage::new(), &cost, 2).expect("replays");
        let (profiled, prof) =
            execute_threaded_profiled(&programs, &dag, MemImage::new(), &cost, 2)
                .expect("replays profiled");

        assert!(plain.mem.contents_eq(&profiled.mem));
        assert_eq!(plain.load_traces, profiled.load_traces);
        assert_eq!(plain.events, profiled.events);
        assert_eq!(plain.user_cycles, profiled.user_cycles);
        assert_eq!(plain.os_cycles, profiled.os_cycles);

        assert_eq!(prof.nodes, 2);
        assert!(!prof.workers.is_empty());
        let executed: u64 = prof.workers.iter().map(|w| w.executed).sum();
        assert_eq!(executed, 2, "every interval profiled exactly once");
        assert_eq!(prof.first_error_ns, None);
        assert!(prof.heap_depth_stats().samples == 2);
        assert!(
            prof.workers.iter().any(|w| w.exec_ns > 0),
            "exec spans recorded"
        );
    }

    #[test]
    fn prof_json_round_trips_through_the_validator() {
        let (programs, logs) = tiny_two_core();
        let cost = CostModel::splash_default();
        let dag = IntervalDag::total_order(programs.len(), &logs).expect("builds");
        let blame = critical_path_blame(&dag, &cost);
        let (_, engine) =
            execute_threaded_profiled(&programs, &dag, MemImage::new(), &cost, 2).expect("replays");
        let doc = prof_json(&[
            ProfEntry {
                run: "tiny".into(),
                variant: "Opt-4K".into(),
                blame: blame.clone(),
                engine: Some(engine),
            },
            ProfEntry {
                run: "tiny".into(),
                variant: "Base-4K".into(),
                blame,
                engine: None,
            },
        ]);
        let stats = relaxreplay::prof::validate_prof_json(&doc).expect("valid sidecar");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.with_engine, 1);
        assert_eq!(stats.path_intervals, 4);
    }

    #[test]
    fn empty_dag_blames_nothing() {
        let logs: Vec<PatchedLog> = vec![PatchedLog::default()];
        let programs = {
            let mut b = ProgramBuilder::new();
            b.halt();
            vec![b.build()]
        };
        let dag = IntervalDag::total_order(programs.len(), &logs).expect("builds");
        let blame = critical_path_blame(&dag, &CostModel::splash_default());
        assert_eq!(blame.makespan_cycles, 0);
        assert!(blame.path.is_empty());
        assert!((blame.coverage_pct() - 100.0).abs() < f64::EPSILON);
    }
}
