use core::fmt;

use relaxreplay::wire::LogSource;
use relaxreplay::{IntervalLog, LogEntry, MemorySource, WireError};
use rr_mem::CoreId;

/// One operation of a *patched*, replay-ready log.
///
/// Produced from raw [`LogEntry`]s by [`patch`], which moves each
/// `ReorderedStore` back to the interval where the store performed and
/// leaves a dummy at its counting position (paper §3.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// Natively execute `instrs` consecutive instructions (the OS arms the
    /// instruction counter and resumes the application; paper §3.5).
    RunBlock {
        /// Instructions to execute.
        instrs: u32,
    },
    /// The next instruction is a reordered load: write `value` to its
    /// destination register and advance the PC without executing it.
    InjectLoad {
        /// The recorded load value.
        value: u64,
    },
    /// Apply a patched store to memory. The PC does **not** advance — the
    /// store instruction itself is elsewhere (it was counted in a later
    /// interval, where a [`ReplayOp::SkipStore`] dummy stands in for it).
    ApplyStore {
        /// Byte address to write.
        addr: u64,
        /// Value to write.
        value: u64,
    },
    /// The dummy left where a patched store was counted: advance the PC
    /// past the store instruction without executing it.
    SkipStore,
    /// The next instruction is a reordered atomic RMW: write `loaded` to
    /// its destination register and advance the PC. Its store half (if
    /// any) was patched back as an [`ReplayOp::ApplyStore`].
    InjectRmw {
        /// The recorded old value the RMW read.
        loaded: u64,
    },
    /// End of an interval: release successors in the global interval
    /// order.
    EndInterval {
        /// Interval sequence number.
        cisn: u16,
        /// Global ordering timestamp.
        timestamp: u64,
    },
}

/// A per-processor log after the patching step, ready for replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchedLog {
    /// The processor this log replays.
    pub core: CoreId,
    /// Replay operations in execution order; each interval ends with
    /// [`ReplayOp::EndInterval`].
    pub ops: Vec<ReplayOp>,
}

/// Errors from [`patch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// A reordered store's offset points before the first interval.
    OffsetOutOfRange {
        /// Interval index (per this core) holding the store entry.
        interval: usize,
        /// The offending offset.
        offset: u32,
    },
    /// The log did not end with an `IntervalFrame`.
    UnterminatedInterval,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::OffsetOutOfRange { interval, offset } => write!(
                f,
                "reordered store in interval {interval} has offset {offset} pointing before the log start"
            ),
            PatchError::UnterminatedInterval => {
                write!(f, "log does not end with an IntervalFrame")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Errors from [`patch_source`]: either the underlying stream failed
/// (truncated or corrupted `.rrlog`) or the decoded entries are not
/// patchable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatchSourceError {
    /// The [`LogSource`] reported a wire-level failure.
    Wire(WireError),
    /// The entries decoded fine but the log itself is malformed.
    Patch(PatchError),
}

impl fmt::Display for PatchSourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchSourceError::Wire(e) => write!(f, "log stream failed: {e}"),
            PatchSourceError::Patch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PatchSourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PatchSourceError::Wire(e) => Some(e),
            PatchSourceError::Patch(e) => Some(e),
        }
    }
}

impl From<WireError> for PatchSourceError {
    fn from(e: WireError) -> Self {
        PatchSourceError::Wire(e)
    }
}

impl From<PatchError> for PatchSourceError {
    fn from(e: PatchError) -> Self {
        PatchSourceError::Patch(e)
    }
}

/// The patching step (paper §3.3.2): converts a raw [`IntervalLog`] into a
/// [`PatchedLog`] by moving every reordered store (and the store half of
/// every reordered RMW) back `offset` intervals, to the end of the interval
/// where it performed, leaving a dummy at its counting position.
///
/// Patched stores land *after* all in-order entries of their target
/// interval, which is always correct: everything counted in that interval
/// is program-order earlier than the store, and any remote access that
/// conflicted after the store performed would have terminated the interval
/// (so no remote interval orders between the store's perform and its
/// interval's end).
///
/// This is a thin adapter over [`patch_source`] for logs already in
/// memory.
///
/// # Errors
///
/// Returns [`PatchError`] if an offset points before the start of the log
/// or the log is not frame-terminated.
pub fn patch(log: &IntervalLog) -> Result<PatchedLog, PatchError> {
    match patch_source(&mut MemorySource::new(log)) {
        Ok(p) => Ok(p),
        Err(PatchSourceError::Patch(e)) => Err(e),
        Err(PatchSourceError::Wire(_)) => {
            unreachable!("MemorySource never reports wire errors")
        }
    }
}

/// As [`patch`], but consuming entries one at a time from any
/// [`LogSource`] — a [`MemorySource`] over an in-memory log or a
/// `ChunkedReader` streaming straight off an `.rrlog` file. Entries are
/// converted to [`ReplayOp`]s as they arrive; only the per-interval op
/// lists (not the raw entries) are buffered until assembly.
///
/// # Errors
///
/// Returns [`PatchSourceError::Wire`] if the source fails mid-stream
/// (truncation, CRC mismatch, I/O) and [`PatchSourceError::Patch`] if the
/// decoded log is malformed.
pub fn patch_source(src: &mut dyn LogSource) -> Result<PatchedLog, PatchSourceError> {
    let core = src.core();
    // Completed interval bodies (ops in counting order) and frames, plus
    // appendices: stores moved back to the end of earlier intervals.
    let mut bodies: Vec<Vec<ReplayOp>> = Vec::new();
    let mut frames: Vec<(u16, u64)> = Vec::new();
    let mut appendices: Vec<Vec<ReplayOp>> = Vec::new();
    let mut body: Vec<ReplayOp> = Vec::new();

    while let Some(e) = src.next_entry()? {
        // Index of the interval currently being filled.
        let i = bodies.len();
        let move_back = |appendices: &mut Vec<Vec<ReplayOp>>,
                         addr: u64,
                         value: u64,
                         offset: u32|
         -> Result<(), PatchError> {
            let target = i
                .checked_sub(offset as usize)
                .ok_or(PatchError::OffsetOutOfRange {
                    interval: i,
                    offset,
                })?;
            if appendices.len() <= target {
                appendices.resize_with(target + 1, Vec::new);
            }
            appendices[target].push(ReplayOp::ApplyStore { addr, value });
            Ok(())
        };
        match e {
            LogEntry::InorderBlock { instrs } => body.push(ReplayOp::RunBlock { instrs }),
            LogEntry::ReorderedLoad { value } => body.push(ReplayOp::InjectLoad { value }),
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            } => {
                move_back(&mut appendices, addr, value, offset)?;
                body.push(ReplayOp::SkipStore);
            }
            LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            } => {
                if let Some(value) = stored {
                    move_back(&mut appendices, addr, value, offset)?;
                }
                body.push(ReplayOp::InjectRmw { loaded });
            }
            LogEntry::IntervalFrame { cisn, timestamp } => {
                bodies.push(std::mem::take(&mut body));
                frames.push((cisn, timestamp));
            }
        }
    }
    if !body.is_empty() {
        return Err(PatchError::UnterminatedInterval.into());
    }

    let mut ops = Vec::new();
    for (i, (body, frame)) in bodies.into_iter().zip(frames).enumerate() {
        ops.extend(body);
        if let Some(appendix) = appendices.get(i) {
            ops.extend(appendix.iter().copied());
        }
        ops.push(ReplayOp::EndInterval {
            cisn: frame.0,
            timestamp: frame.1,
        });
    }
    Ok(PatchedLog { core, ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(cisn: u16, ts: u64) -> LogEntry {
        LogEntry::IntervalFrame {
            cisn,
            timestamp: ts,
        }
    }

    #[test]
    fn store_moves_back_and_leaves_dummy() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::InorderBlock { instrs: 4 },
                frame(0, 10),
                frame(1, 20),
                LogEntry::ReorderedStore {
                    addr: 0x8,
                    value: 9,
                    offset: 2,
                },
                LogEntry::InorderBlock { instrs: 1 },
                frame(2, 30),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(
            p.ops,
            vec![
                ReplayOp::RunBlock { instrs: 4 },
                ReplayOp::ApplyStore {
                    addr: 0x8,
                    value: 9
                }, // end of interval 0
                ReplayOp::EndInterval {
                    cisn: 0,
                    timestamp: 10
                },
                ReplayOp::EndInterval {
                    cisn: 1,
                    timestamp: 20
                },
                ReplayOp::SkipStore,
                ReplayOp::RunBlock { instrs: 1 },
                ReplayOp::EndInterval {
                    cisn: 2,
                    timestamp: 30
                },
            ]
        );
    }

    #[test]
    fn rmw_splits_into_inject_and_apply() {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries: vec![
                frame(0, 5),
                LogEntry::ReorderedRmw {
                    loaded: 3,
                    addr: 0x10,
                    stored: Some(4),
                    offset: 1,
                },
                frame(1, 9),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(
            p.ops,
            vec![
                ReplayOp::ApplyStore {
                    addr: 0x10,
                    value: 4
                },
                ReplayOp::EndInterval {
                    cisn: 0,
                    timestamp: 5
                },
                ReplayOp::InjectRmw { loaded: 3 },
                ReplayOp::EndInterval {
                    cisn: 1,
                    timestamp: 9
                },
            ]
        );
    }

    #[test]
    fn failed_cas_has_no_store_half() {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries: vec![
                frame(0, 5),
                LogEntry::ReorderedRmw {
                    loaded: 3,
                    addr: 0x10,
                    stored: None,
                    offset: 1,
                },
                frame(1, 9),
            ],
        };
        let p = patch(&log).expect("patches");
        assert!(!p
            .ops
            .iter()
            .any(|o| matches!(o, ReplayOp::ApplyStore { .. })));
    }

    #[test]
    fn bad_offset_is_rejected() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::ReorderedStore {
                    addr: 0,
                    value: 0,
                    offset: 1,
                },
                frame(0, 1),
            ],
        };
        assert_eq!(
            patch(&log),
            Err(PatchError::OffsetOutOfRange {
                interval: 0,
                offset: 1
            })
        );
    }

    /// Regression companion to the recorder's CISN-wrap fix: an offset
    /// wider than 16 bits must move the store back its exact distance.
    /// Pre-fix, the u16 field aliased 65537 to 1 and the store landed one
    /// interval back instead of at the log start.
    #[test]
    fn wide_offset_moves_back_across_cisn_wrap() {
        let offset = u32::from(u16::MAX) + 2; // 65537
        let mut entries = Vec::new();
        for i in 0..offset as usize {
            entries.push(frame(i as u16, i as u64)); // cisn wraps naturally
        }
        entries.push(LogEntry::ReorderedStore {
            addr: 0x8,
            value: 9,
            offset,
        });
        entries.push(frame(offset as u16, u64::from(offset)));
        let log = IntervalLog {
            core: CoreId::new(0),
            entries,
        };
        let p = patch(&log).expect("patches");
        assert_eq!(
            p.ops[0],
            ReplayOp::ApplyStore {
                addr: 0x8,
                value: 9
            },
            "store must land in the very first interval"
        );
        assert_eq!(
            p.ops
                .iter()
                .filter(|o| matches!(o, ReplayOp::ApplyStore { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn unterminated_log_is_rejected() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![LogEntry::InorderBlock { instrs: 1 }],
        };
        assert_eq!(patch(&log), Err(PatchError::UnterminatedInterval));
    }

    #[test]
    fn patch_source_over_chunked_stream_matches_patch() {
        let log = IntervalLog {
            core: CoreId::new(2),
            entries: vec![
                LogEntry::InorderBlock { instrs: 4 },
                frame(0, 10),
                LogEntry::ReorderedLoad { value: 77 },
                frame(1, 20),
                LogEntry::ReorderedStore {
                    addr: 0x8,
                    value: 9,
                    offset: 2,
                },
                LogEntry::ReorderedRmw {
                    loaded: 1,
                    addr: 0x20,
                    stored: Some(2),
                    offset: 1,
                },
                LogEntry::InorderBlock { instrs: 1 },
                frame(2, 30),
            ],
        };
        let bytes = log.encode();
        let mut reader = relaxreplay::ChunkedReader::new(&bytes[..]).expect("valid header");
        let from_stream = patch_source(&mut reader).expect("patches from stream");
        assert_eq!(from_stream, patch(&log).expect("patches in memory"));
    }

    #[test]
    fn patch_source_surfaces_wire_errors() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![LogEntry::InorderBlock { instrs: 4 }, frame(0, 10)],
        };
        let mut bytes = log.encode();
        bytes.truncate(bytes.len() - 2); // cut into the final chunk's CRC
        let mut reader = relaxreplay::ChunkedReader::new(&bytes[..]).expect("header intact");
        match patch_source(&mut reader) {
            Err(PatchSourceError::Wire(WireError::Truncated { .. })) => {}
            other => panic!("expected a wire truncation error, got {other:?}"),
        }
    }

    #[test]
    fn loads_stay_in_place() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::InorderBlock { instrs: 2 },
                LogEntry::ReorderedLoad { value: 42 },
                LogEntry::InorderBlock { instrs: 1 },
                frame(0, 7),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(p.ops[1], ReplayOp::InjectLoad { value: 42 });
    }
}
