use core::fmt;

use relaxreplay::{IntervalLog, LogEntry};
use rr_mem::CoreId;

/// One operation of a *patched*, replay-ready log.
///
/// Produced from raw [`LogEntry`]s by [`patch`], which moves each
/// `ReorderedStore` back to the interval where the store performed and
/// leaves a dummy at its counting position (paper §3.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// Natively execute `instrs` consecutive instructions (the OS arms the
    /// instruction counter and resumes the application; paper §3.5).
    RunBlock {
        /// Instructions to execute.
        instrs: u32,
    },
    /// The next instruction is a reordered load: write `value` to its
    /// destination register and advance the PC without executing it.
    InjectLoad {
        /// The recorded load value.
        value: u64,
    },
    /// Apply a patched store to memory. The PC does **not** advance — the
    /// store instruction itself is elsewhere (it was counted in a later
    /// interval, where a [`ReplayOp::SkipStore`] dummy stands in for it).
    ApplyStore {
        /// Byte address to write.
        addr: u64,
        /// Value to write.
        value: u64,
    },
    /// The dummy left where a patched store was counted: advance the PC
    /// past the store instruction without executing it.
    SkipStore,
    /// The next instruction is a reordered atomic RMW: write `loaded` to
    /// its destination register and advance the PC. Its store half (if
    /// any) was patched back as an [`ReplayOp::ApplyStore`].
    InjectRmw {
        /// The recorded old value the RMW read.
        loaded: u64,
    },
    /// End of an interval: release successors in the global interval
    /// order.
    EndInterval {
        /// Interval sequence number.
        cisn: u16,
        /// Global ordering timestamp.
        timestamp: u64,
    },
}

/// A per-processor log after the patching step, ready for replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchedLog {
    /// The processor this log replays.
    pub core: CoreId,
    /// Replay operations in execution order; each interval ends with
    /// [`ReplayOp::EndInterval`].
    pub ops: Vec<ReplayOp>,
}

/// Errors from [`patch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// A reordered store's offset points before the first interval.
    OffsetOutOfRange {
        /// Interval index (per this core) holding the store entry.
        interval: usize,
        /// The offending offset.
        offset: u16,
    },
    /// The log did not end with an `IntervalFrame`.
    UnterminatedInterval,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::OffsetOutOfRange { interval, offset } => write!(
                f,
                "reordered store in interval {interval} has offset {offset} pointing before the log start"
            ),
            PatchError::UnterminatedInterval => {
                write!(f, "log does not end with an IntervalFrame")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// The patching step (paper §3.3.2): converts a raw [`IntervalLog`] into a
/// [`PatchedLog`] by moving every reordered store (and the store half of
/// every reordered RMW) back `offset` intervals, to the end of the interval
/// where it performed, leaving a dummy at its counting position.
///
/// Patched stores land *after* all in-order entries of their target
/// interval, which is always correct: everything counted in that interval
/// is program-order earlier than the store, and any remote access that
/// conflicted after the store performed would have terminated the interval
/// (so no remote interval orders between the store's perform and its
/// interval's end).
///
/// # Errors
///
/// Returns [`PatchError`] if an offset points before the start of the log
/// or the log is not frame-terminated.
pub fn patch(log: &IntervalLog) -> Result<PatchedLog, PatchError> {
    // Split into intervals.
    let mut intervals: Vec<(Vec<&LogEntry>, (u16, u64))> = Vec::new();
    let mut current: Vec<&LogEntry> = Vec::new();
    for e in &log.entries {
        if let LogEntry::IntervalFrame { cisn, timestamp } = e {
            intervals.push((std::mem::take(&mut current), (*cisn, *timestamp)));
        } else {
            current.push(e);
        }
    }
    if !current.is_empty() {
        return Err(PatchError::UnterminatedInterval);
    }

    // Appendices: stores moved to the end of earlier intervals.
    let mut appendices: Vec<Vec<ReplayOp>> = vec![Vec::new(); intervals.len()];
    let mut bodies: Vec<Vec<ReplayOp>> = Vec::with_capacity(intervals.len());
    for (i, (entries, _)) in intervals.iter().enumerate() {
        let mut body = Vec::with_capacity(entries.len());
        for e in entries {
            match e {
                LogEntry::InorderBlock { instrs } => {
                    body.push(ReplayOp::RunBlock { instrs: *instrs });
                }
                LogEntry::ReorderedLoad { value } => {
                    body.push(ReplayOp::InjectLoad { value: *value });
                }
                LogEntry::ReorderedStore {
                    addr,
                    value,
                    offset,
                } => {
                    let target =
                        i.checked_sub(*offset as usize)
                            .ok_or(PatchError::OffsetOutOfRange {
                                interval: i,
                                offset: *offset,
                            })?;
                    appendices[target].push(ReplayOp::ApplyStore {
                        addr: *addr,
                        value: *value,
                    });
                    body.push(ReplayOp::SkipStore);
                }
                LogEntry::ReorderedRmw {
                    loaded,
                    addr,
                    stored,
                    offset,
                } => {
                    if let Some(value) = stored {
                        let target = i.checked_sub(*offset as usize).ok_or(
                            PatchError::OffsetOutOfRange {
                                interval: i,
                                offset: *offset,
                            },
                        )?;
                        appendices[target].push(ReplayOp::ApplyStore {
                            addr: *addr,
                            value: *value,
                        });
                    }
                    body.push(ReplayOp::InjectRmw { loaded: *loaded });
                }
                LogEntry::IntervalFrame { .. } => unreachable!("frames split intervals"),
            }
        }
        bodies.push(body);
    }

    let mut ops = Vec::new();
    for (i, ((_, frame), body)) in intervals.iter().zip(bodies).enumerate() {
        ops.extend(body);
        ops.extend(appendices[i].iter().copied());
        ops.push(ReplayOp::EndInterval {
            cisn: frame.0,
            timestamp: frame.1,
        });
    }
    Ok(PatchedLog {
        core: log.core,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(cisn: u16, ts: u64) -> LogEntry {
        LogEntry::IntervalFrame {
            cisn,
            timestamp: ts,
        }
    }

    #[test]
    fn store_moves_back_and_leaves_dummy() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::InorderBlock { instrs: 4 },
                frame(0, 10),
                frame(1, 20),
                LogEntry::ReorderedStore {
                    addr: 0x8,
                    value: 9,
                    offset: 2,
                },
                LogEntry::InorderBlock { instrs: 1 },
                frame(2, 30),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(
            p.ops,
            vec![
                ReplayOp::RunBlock { instrs: 4 },
                ReplayOp::ApplyStore {
                    addr: 0x8,
                    value: 9
                }, // end of interval 0
                ReplayOp::EndInterval {
                    cisn: 0,
                    timestamp: 10
                },
                ReplayOp::EndInterval {
                    cisn: 1,
                    timestamp: 20
                },
                ReplayOp::SkipStore,
                ReplayOp::RunBlock { instrs: 1 },
                ReplayOp::EndInterval {
                    cisn: 2,
                    timestamp: 30
                },
            ]
        );
    }

    #[test]
    fn rmw_splits_into_inject_and_apply() {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries: vec![
                frame(0, 5),
                LogEntry::ReorderedRmw {
                    loaded: 3,
                    addr: 0x10,
                    stored: Some(4),
                    offset: 1,
                },
                frame(1, 9),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(
            p.ops,
            vec![
                ReplayOp::ApplyStore {
                    addr: 0x10,
                    value: 4
                },
                ReplayOp::EndInterval {
                    cisn: 0,
                    timestamp: 5
                },
                ReplayOp::InjectRmw { loaded: 3 },
                ReplayOp::EndInterval {
                    cisn: 1,
                    timestamp: 9
                },
            ]
        );
    }

    #[test]
    fn failed_cas_has_no_store_half() {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries: vec![
                frame(0, 5),
                LogEntry::ReorderedRmw {
                    loaded: 3,
                    addr: 0x10,
                    stored: None,
                    offset: 1,
                },
                frame(1, 9),
            ],
        };
        let p = patch(&log).expect("patches");
        assert!(!p
            .ops
            .iter()
            .any(|o| matches!(o, ReplayOp::ApplyStore { .. })));
    }

    #[test]
    fn bad_offset_is_rejected() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::ReorderedStore {
                    addr: 0,
                    value: 0,
                    offset: 1,
                },
                frame(0, 1),
            ],
        };
        assert_eq!(
            patch(&log),
            Err(PatchError::OffsetOutOfRange {
                interval: 0,
                offset: 1
            })
        );
    }

    #[test]
    fn unterminated_log_is_rejected() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![LogEntry::InorderBlock { instrs: 1 }],
        };
        assert_eq!(patch(&log), Err(PatchError::UnterminatedInterval));
    }

    #[test]
    fn loads_stay_in_place() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::InorderBlock { instrs: 2 },
                LogEntry::ReorderedLoad { value: 42 },
                LogEntry::InorderBlock { instrs: 1 },
                frame(0, 7),
            ],
        };
        let p = patch(&log).expect("patches");
        assert_eq!(p.ops[1], ReplayOp::InjectLoad { value: 42 });
    }
}
