/// The memory consistency model the core implements.
///
/// RelaxReplay's claim (paper §1, §3.6) is that one recorder design works
/// for *any* model with write atomicity; the simulator therefore supports
/// the three classic points so the claim can be tested, not just stated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsistencyModel {
    /// Sequential consistency: memory operations issue and perform strictly
    /// in program order (each access waits for every older access,
    /// including buffered stores).
    Sc,
    /// Total store ordering: loads may bypass buffered stores (with
    /// forwarding) but stay ordered among themselves; stores drain FIFO,
    /// one at a time.
    Tso,
    /// Release consistency (the paper's evaluation model): loads and
    /// stores reorder freely; fences and atomics restore order.
    Rc,
}

/// Configuration of one out-of-order core, mirroring the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions dispatched and retired per cycle (Table 1: 4-way).
    pub issue_width: usize,
    /// Reorder-buffer capacity (Table 1: 176 entries).
    pub rob_entries: usize,
    /// Load/store queue capacity (Table 1: 128 entries).
    pub lsq_entries: usize,
    /// Number of load/store units — memory operations issued per cycle
    /// (Table 1: 2).
    pub ldst_units: usize,
    /// Write-buffer capacity (retired stores awaiting their coherence
    /// transaction).
    pub write_buffer_entries: usize,
    /// Maximum store transactions in flight from the write buffer at once
    /// (release consistency lets independent stores overlap).
    pub write_buffer_inflight: usize,
    /// Cycles between a mispredicted branch resolving and the corrected
    /// path dispatching.
    pub mispredict_penalty: u64,
    /// Execution latency of simple ALU operations.
    pub alu_latency: u64,
    /// Execution latency of multiplies.
    pub mul_latency: u64,
    /// Entries in the branch predictor's 2-bit counter table (power of
    /// two).
    pub predictor_entries: usize,
    /// The memory consistency model (Table 1: RC).
    pub consistency: ConsistencyModel,
}

impl CpuConfig {
    /// The paper's core parameters (Table 1).
    #[must_use]
    pub fn splash_default() -> Self {
        CpuConfig {
            issue_width: 4,
            rob_entries: 176,
            lsq_entries: 128,
            ldst_units: 2,
            write_buffer_entries: 16,
            write_buffer_inflight: 8,
            mispredict_penalty: 3,
            alu_latency: 1,
            mul_latency: 3,
            predictor_entries: 4096,
            consistency: ConsistencyModel::Rc,
        }
    }

    /// The same core under a different consistency model.
    #[must_use]
    pub fn with_consistency(mut self, model: ConsistencyModel) -> Self {
        self.consistency = model;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::splash_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = CpuConfig::splash_default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 176);
        assert_eq!(c.lsq_entries, 128);
        assert_eq!(c.ldst_units, 2);
        assert!(c.predictor_entries.is_power_of_two());
    }
}
