/// A classic table of 2-bit saturating counters indexed by PC.
///
/// Mispredictions squash the ROB — and with it the recorder's TRAQ — so the
/// predictor's accuracy shapes how often RelaxReplay's flush path is
/// exercised.
#[derive(Clone, Debug)]
pub struct Predictor {
    counters: Vec<u8>, // 0..=3; >=2 predicts taken
}

impl Predictor {
    /// Creates a predictor with `entries` counters, initialized to weakly
    /// taken (backward branches in loops warm up fast).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Predictor {
            counters: vec![2; entries],
        }
    }

    fn index(&self, pc: u32) -> usize {
        (pc as usize) & (self.counters.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the predictor with the branch's actual direction.
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_taken_and_not_taken() {
        let mut p = Predictor::new(16);
        for _ in 0..4 {
            p.update(5, false);
        }
        assert!(!p.predict(5));
        for _ in 0..4 {
            p.update(5, true);
        }
        assert!(p.predict(5));
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut p = Predictor::new(16);
        for _ in 0..4 {
            p.update(1, true);
        }
        p.update(1, false); // 3 -> 2: still predicts taken
        assert!(p.predict(1));
        p.update(1, false); // 2 -> 1: now predicts not taken
        assert!(!p.predict(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Predictor::new(10);
    }
}
