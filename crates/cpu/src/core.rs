use std::collections::{BTreeSet, HashMap, VecDeque};

use rr_isa::{AtomicOp, FenceKind, Instr, MemImage, Program, Reg, NUM_REGS};
use rr_mem::{AccessKind, CoreId, LineAddr, MemorySystem, ReqId, Response};

use crate::{ConsistencyModel, CoreObserver, CoreStats, CpuConfig, PerformRecord, Predictor};

/// Pipeline stage of a ROB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Waiting for source operands.
    Waiting,
    /// Operands ready; queued for an execution port.
    Ready,
    /// Executing (completion scheduled in `exec_inflight`).
    Executing,
    /// Address computed; a load waits for issue, an atomic waits to reach
    /// the ROB head.
    MemWait,
    /// Issued to the memory system; waiting for its completion.
    MemPending,
    /// Finished (result, if any, broadcast). Eligible to retire.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpSlot {
    /// Unused slot.
    None,
    /// Operand value available.
    Ready(u64),
    /// Waiting for the instruction with this sequence number.
    Wait(u64),
}

#[derive(Clone, Debug)]
struct MemSide {
    kind: AccessKind,
    addr: Option<u64>,
    /// Store data / atomic operand.
    data: Option<u64>,
    /// Atomic CAS expected value.
    expected: Option<u64>,
    performed: bool,
    issued: bool,
    /// Performed while an older memory access was still pending (counted
    /// into the stats only if the instruction commits).
    ooo: bool,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    pc: u32,
    instr: Instr,
    ops: [OpSlot; 3],
    stage: Stage,
    result: Option<u64>,
    dest: Option<Reg>,
    predicted_taken: bool,
    mem: Option<MemSide>,
}

impl RobEntry {
    fn ops_ready(&self) -> bool {
        !self.ops.iter().any(|o| matches!(o, OpSlot::Wait(_)))
    }

    fn op_value(&self, i: usize) -> u64 {
        match self.ops[i] {
            OpSlot::Ready(v) => v,
            other => panic!("operand {i} of seq {} not ready: {other:?}", self.seq),
        }
    }
}

#[derive(Clone, Debug)]
struct WbEntry {
    id: u64,
    seq: u64,
    addr: u64,
    line: LineAddr,
    data: u64,
    issued: bool,
    performed: bool,
}

#[derive(Clone, Copy, Debug)]
enum MemTarget {
    Rob(u64),
    Wb(u64),
    /// The requesting instruction was squashed while the transaction was in
    /// flight; the completion is dropped. (Sequence numbers are reused
    /// after a squash, so the stale request must not be re-matched against
    /// the re-dispatched instruction.)
    Orphan,
}

/// A 4-issue out-of-order superscalar core with a release-consistent memory
/// model (paper §5.1, Table 1).
///
/// The core executes one thread's [`Program`] against the shared functional
/// memory ([`MemImage`]) and the timing/coherence model
/// ([`MemorySystem`]). A [`CoreObserver`] — in the full system, the
/// RelaxReplay recorder — watches dispatches, performs, retirements and
/// squashes, and may stall dispatch when its TRAQ is full.
///
/// ## Release-consistency rules implemented
///
/// * Loads issue to memory out of order as soon as their address is known,
///   provided no older store in the LSQ has an unknown or same-word
///   address (same-word with ready data ⇒ store-to-load forwarding, from
///   the LSQ or the write buffer).
/// * Stores retire into a write buffer and merge with memory via coherence
///   transactions; independent stores overlap, so stores may also perform
///   out of program order.
/// * `Fence(Acquire)` blocks younger loads from issuing until it retires;
///   `Fence(Release)` retires only once the write buffer has drained;
///   `Full` does both. Atomic RMWs have acquire+release semantics: they
///   drain the write buffer, perform as one coherence transaction at the
///   ROB head, and block younger loads until they perform.
pub struct Core<'p> {
    id: CoreId,
    cfg: CpuConfig,
    program: &'p Program,
    // Front end.
    fetch_pc: usize,
    dispatch_stopped: bool,
    halted: bool,
    redirect_ready_at: u64,
    predictor: Predictor,
    // ROB (circular, slot = seq % capacity; seqs never reused).
    slots: Vec<Option<RobEntry>>,
    head_seq: u64,
    next_seq: u64,
    // Register state.
    regmap: [Option<u64>; NUM_REGS],
    committed: [u64; NUM_REGS],
    // Scheduling.
    waiters: HashMap<u64, Vec<u64>>,
    ready_q: VecDeque<u64>,
    exec_inflight: Vec<(u64, u64)>, // (done_at, seq)
    // Memory ordering.
    lsq: VecDeque<u64>,
    write_buffer: VecDeque<WbEntry>,
    wb_next_id: u64,
    wb_inflight: usize,
    blocking: BTreeSet<u64>,
    outstanding_mem: BTreeSet<u64>,
    /// Unperformed loads/RMWs only (TSO load-load ordering).
    outstanding_loads: BTreeSet<u64>,
    pending_reqs: HashMap<ReqId, MemTarget>,
    completions_in: Vec<ReqId>,
    stats: CoreStats,
}

impl std::fmt::Debug for Core<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("fetch_pc", &self.fetch_pc)
            .field("rob", &(self.next_seq - self.head_seq))
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl<'p> Core<'p> {
    /// Creates a core that will execute `program`.
    #[must_use]
    pub fn new(id: CoreId, cfg: CpuConfig, program: &'p Program) -> Self {
        let rob = cfg.rob_entries;
        let predictor = Predictor::new(cfg.predictor_entries);
        Core {
            id,
            cfg,
            program,
            fetch_pc: 0,
            dispatch_stopped: false,
            halted: false,
            redirect_ready_at: 0,
            predictor,
            slots: vec![None; rob],
            head_seq: 0,
            next_seq: 0,
            regmap: [None; NUM_REGS],
            committed: [0; NUM_REGS],
            waiters: HashMap::new(),
            ready_q: VecDeque::new(),
            exec_inflight: Vec::new(),
            lsq: VecDeque::new(),
            write_buffer: VecDeque::new(),
            wb_next_id: 0,
            wb_inflight: 0,
            blocking: BTreeSet::new(),
            outstanding_mem: BTreeSet::new(),
            outstanding_loads: BTreeSet::new(),
            pending_reqs: HashMap::new(),
            completions_in: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// This core's identifier.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The architectural value of `reg` (committed state).
    #[must_use]
    pub fn committed_reg(&self, reg: Reg) -> u64 {
        self.committed[reg.index()]
    }

    /// Whether the thread has finished: it halted (or ran out of program)
    /// and every buffered effect has reached memory.
    #[must_use]
    pub fn is_done(&self) -> bool {
        let fetch_exhausted =
            self.halted || self.dispatch_stopped || self.fetch_pc >= self.program.len();
        fetch_exhausted
            && self.rob_is_empty()
            && self.write_buffer.is_empty()
            && self.wb_inflight == 0
            && self.pending_reqs.is_empty()
    }

    fn rob_is_empty(&self) -> bool {
        self.head_seq == self.next_seq
    }

    fn rob_len(&self) -> usize {
        (self.next_seq - self.head_seq) as usize
    }

    fn slot_of(&self, seq: u64) -> usize {
        (seq % self.slots.len() as u64) as usize
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        if seq < self.head_seq || seq >= self.next_seq {
            return None;
        }
        self.slots[self.slot_of(seq)]
            .as_ref()
            .filter(|e| e.seq == seq)
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        if seq < self.head_seq || seq >= self.next_seq {
            return None;
        }
        let idx = self.slot_of(seq);
        self.slots[idx].as_mut().filter(|e| e.seq == seq)
    }

    /// Delivers a memory-system completion to this core. The request
    /// performs during the next [`Core::tick`].
    pub fn push_completion(&mut self, req: ReqId) {
        self.completions_in.push(req);
    }

    /// Processes delivered completions without otherwise advancing the
    /// pipeline.
    ///
    /// Schedule perturbation (rr-check stall strategies) calls this on
    /// cycles where the pipeline is held: an access still *performs* at
    /// the cycle its completion is delivered — the memory system's timing
    /// contract, which interval-ordering correctness rests on — just as a
    /// real core's write buffer and MSHRs keep operating through a
    /// front-end stall. Skipping this lets a conflicting remote snoop
    /// slip between a transaction's completion and its perform, erasing
    /// the only ordering evidence the recorder would ever see.
    pub fn drain_completions(
        &mut self,
        cycle: u64,
        img: &mut MemImage,
        obs: &mut dyn CoreObserver,
    ) {
        if self.is_done() {
            return;
        }
        self.process_completions(cycle, img, obs);
    }

    /// Advances the core one cycle.
    ///
    /// Must be called after the memory system's tick for the same cycle
    /// (with completions already routed via [`Core::push_completion`]).
    pub fn tick(
        &mut self,
        cycle: u64,
        img: &mut MemImage,
        mem: &mut MemorySystem,
        obs: &mut dyn CoreObserver,
    ) {
        if self.is_done() {
            return;
        }
        self.stats.active_cycles += 1;
        self.process_completions(cycle, img, obs);
        self.finish_execution(cycle, obs);
        self.schedule_ready(cycle);
        self.issue_loads(cycle, img, mem, obs);
        self.retire(cycle, img, mem, obs);
        self.drain_write_buffer(cycle, img, mem, obs);
        self.dispatch(cycle, obs);
    }

    // ----- perform bookkeeping -------------------------------------------

    /// Registers a perform event. Returns whether an older memory access
    /// was still pending (the Figure 1 "out of program order" condition);
    /// loads/RMWs bank that flag in their ROB entry and count it at
    /// retirement (so squashed speculative performs are not counted), while
    /// write-buffer stores — already committed — count it immediately.
    #[allow(clippy::too_many_arguments)]
    fn note_perform(
        &mut self,
        obs: &mut dyn CoreObserver,
        seq: u64,
        kind: AccessKind,
        addr: u64,
        loaded: Option<u64>,
        stored: Option<u64>,
        cycle: u64,
    ) -> bool {
        let older_pending = self.outstanding_mem.range(..seq).next().is_some();
        self.outstanding_mem.remove(&seq);
        self.outstanding_loads.remove(&seq);
        obs.on_perform(&PerformRecord {
            seq,
            kind,
            addr,
            line: LineAddr::containing(addr),
            loaded,
            stored,
            cycle,
        });
        older_pending
    }

    /// Banks the out-of-order flag of a ROB-resident access (load/RMW).
    fn bank_ooo(&mut self, seq: u64, ooo: bool) {
        if let Some(e) = self.entry_mut(seq) {
            e.mem.as_mut().expect("mem side").ooo = ooo;
        }
    }

    // ----- completions -----------------------------------------------------

    fn process_completions(&mut self, cycle: u64, img: &mut MemImage, obs: &mut dyn CoreObserver) {
        let reqs = std::mem::take(&mut self.completions_in);
        for req in reqs {
            let Some(target) = self.pending_reqs.remove(&req) else {
                panic!("completion for unknown request {req}");
            };
            match target {
                MemTarget::Orphan => continue,
                MemTarget::Rob(seq) => {
                    let Some(entry) = self.entry(seq) else {
                        continue; // squashed while in flight
                    };
                    let mem_side = entry.mem.clone().expect("memory entry");
                    let addr = mem_side.addr.expect("issued implies address");
                    match mem_side.kind {
                        AccessKind::Load => {
                            let value = img.load(addr);
                            if let Some(e) = self.entry_mut(seq) {
                                e.mem.as_mut().expect("mem side").performed = true;
                            }
                            let ooo = self.note_perform(
                                obs,
                                seq,
                                AccessKind::Load,
                                addr,
                                Some(value),
                                None,
                                cycle,
                            );
                            self.bank_ooo(seq, ooo);
                            self.complete_entry(seq, Some(value));
                        }
                        AccessKind::Rmw => {
                            let (old, stored) = self.apply_rmw(img, seq, addr);
                            if let Some(e) = self.entry_mut(seq) {
                                e.mem.as_mut().expect("mem side").performed = true;
                            }
                            self.blocking.remove(&seq);
                            let ooo = self.note_perform(
                                obs,
                                seq,
                                AccessKind::Rmw,
                                addr,
                                Some(old),
                                stored,
                                cycle,
                            );
                            self.bank_ooo(seq, ooo);
                            self.complete_entry(seq, Some(old));
                        }
                        AccessKind::Store => unreachable!("ROB stores perform via write buffer"),
                    }
                }
                MemTarget::Wb(id) => {
                    let entry = self
                        .write_buffer
                        .iter_mut()
                        .find(|e| e.id == id)
                        .expect("write-buffer entry for completion");
                    entry.performed = true;
                    let (seq, addr, data) = (entry.seq, entry.addr, entry.data);
                    img.store(addr, data);
                    self.wb_inflight -= 1;
                    if self.note_perform(obs, seq, AccessKind::Store, addr, None, Some(data), cycle)
                    {
                        self.stats.ooo_stores += 1;
                    }
                    self.pop_performed_wb();
                }
            }
        }
    }

    fn apply_rmw(&mut self, img: &mut MemImage, seq: u64, addr: u64) -> (u64, Option<u64>) {
        let entry = self.entry(seq).expect("RMW entry");
        let Instr::Atomic { op, .. } = entry.instr else {
            panic!("apply_rmw on non-atomic seq {seq}");
        };
        let mem_side = entry.mem.as_ref().expect("mem side");
        let operand = mem_side.data.expect("atomic operand");
        let expected = mem_side.expected.expect("atomic expected");
        let mut stored = None;
        let old = img.rmw(addr, |old| {
            stored = match op {
                AtomicOp::Cas => (old == expected).then_some(operand),
                AtomicOp::FetchAdd => Some(old.wrapping_add(operand)),
                AtomicOp::Swap => Some(operand),
            };
            stored
        });
        (old, stored)
    }

    fn pop_performed_wb(&mut self) {
        while self.write_buffer.front().is_some_and(|e| e.performed) {
            self.write_buffer.pop_front();
        }
    }

    // ----- execution -------------------------------------------------------

    fn finish_execution(&mut self, cycle: u64, obs: &mut dyn CoreObserver) {
        let due: Vec<u64> = {
            let mut due = Vec::new();
            self.exec_inflight.retain(|&(done_at, seq)| {
                if done_at <= cycle {
                    due.push(seq);
                    false
                } else {
                    true
                }
            });
            due
        };
        for seq in due {
            self.finish_one(seq, cycle, obs);
        }
    }

    fn finish_one(&mut self, seq: u64, cycle: u64, obs: &mut dyn CoreObserver) {
        let Some(entry) = self.entry(seq) else {
            return; // squashed
        };
        match entry.instr {
            Instr::Op { op, .. } => {
                let v = op.apply(entry.op_value(0), entry.op_value(1));
                self.complete_entry(seq, Some(v));
            }
            Instr::OpImm { op, imm, .. } => {
                let v = op.apply(entry.op_value(0), imm as u64);
                self.complete_entry(seq, Some(v));
            }
            Instr::Branch { cond, target, .. } => {
                let taken = cond.eval(entry.op_value(0), entry.op_value(1));
                let (pc, predicted) = (entry.pc, entry.predicted_taken);
                self.predictor.update(pc, taken);
                self.complete_entry(seq, None);
                if taken != predicted {
                    let new_pc = if taken {
                        target as usize
                    } else {
                        pc as usize + 1
                    };
                    self.squash_after(seq, new_pc, cycle, obs);
                }
            }
            Instr::Load { offset, .. } => {
                let mem_side = entry.mem.as_ref().expect("mem side");
                if mem_side.performed {
                    // Data arrived (hit or forward); broadcast it.
                    let v = entry.result;
                    self.complete_entry(seq, v);
                } else {
                    // Address-generation step.
                    let addr = entry.op_value(0).wrapping_add(offset as u64);
                    let e = self.entry_mut(seq).expect("entry");
                    e.mem.as_mut().expect("mem side").addr = Some(addr);
                    e.stage = Stage::MemWait;
                }
            }
            Instr::Store { offset, .. } => {
                let addr = entry.op_value(0).wrapping_add(offset as u64);
                let data = entry.op_value(1);
                let e = self.entry_mut(seq).expect("entry");
                let m = e.mem.as_mut().expect("mem side");
                m.addr = Some(addr);
                m.data = Some(data);
                e.stage = Stage::Done;
                self.check_memory_order(seq, addr, cycle, obs);
            }
            Instr::Atomic { .. } => {
                let mem_side = entry.mem.as_ref().expect("mem side");
                if mem_side.performed {
                    let v = entry.result;
                    self.complete_entry(seq, v);
                } else {
                    let addr = entry.op_value(0);
                    let expected = entry.op_value(1);
                    let operand = entry.op_value(2);
                    let e = self.entry_mut(seq).expect("entry");
                    let m = e.mem.as_mut().expect("mem side");
                    m.addr = Some(addr);
                    m.expected = Some(expected);
                    m.data = Some(operand);
                    e.stage = Stage::MemWait;
                    self.check_memory_order(seq, addr, cycle, obs);
                }
            }
            _ => unreachable!("instruction {:?} does not execute", entry.instr),
        }
    }

    fn schedule_ready(&mut self, cycle: u64) {
        for _ in 0..self.cfg.issue_width {
            let Some(seq) = self.ready_q.pop_front() else {
                break;
            };
            let Some(entry) = self.entry(seq) else {
                continue; // squashed
            };
            if entry.stage != Stage::Ready {
                continue;
            }
            let latency = match entry.instr {
                Instr::Op { op, .. } | Instr::OpImm { op, .. } => {
                    if op == rr_isa::AluOp::Mul {
                        self.cfg.mul_latency
                    } else {
                        self.cfg.alu_latency
                    }
                }
                _ => self.cfg.alu_latency,
            };
            self.entry_mut(seq).expect("entry").stage = Stage::Executing;
            self.exec_inflight.push((cycle + latency, seq));
        }
    }

    /// Marks `seq` done, stores its result and wakes up consumers.
    fn complete_entry(&mut self, seq: u64, result: Option<u64>) {
        {
            let e = self.entry_mut(seq).expect("completing a live entry");
            e.stage = Stage::Done;
            e.result = result;
        }
        let Some(waiters) = self.waiters.remove(&seq) else {
            return;
        };
        let value = result.unwrap_or(0);
        for w in waiters {
            let Some(entry) = self.entry_mut(w) else {
                continue; // squashed
            };
            let mut filled = false;
            for op in &mut entry.ops {
                if *op == OpSlot::Wait(seq) {
                    *op = OpSlot::Ready(value);
                    filled = true;
                }
            }
            if filled && entry.ops_ready() && entry.stage == Stage::Waiting {
                entry.stage = Stage::Ready;
                self.ready_q.push_back(w);
            }
        }
    }

    // ----- load issue ------------------------------------------------------

    fn issue_loads(
        &mut self,
        cycle: u64,
        img: &mut MemImage,
        mem: &mut MemorySystem,
        obs: &mut dyn CoreObserver,
    ) {
        let mut units = self.cfg.ldst_units;
        let blocking_min = self.blocking.iter().next().copied();
        // Youngest older store per word address: Some(data) = forwardable,
        // None = must wait (unperformed atomic).
        let mut store_data: HashMap<u64, Option<u64>> = HashMap::new();
        let lsq: Vec<u64> = self.lsq.iter().copied().collect();
        for seq in lsq {
            if units == 0 {
                break;
            }
            let Some(entry) = self.entry(seq) else {
                unreachable!("LSQ holds only live entries");
            };
            let mem_side = entry.mem.as_ref().expect("LSQ entry has a mem side");
            match mem_side.kind {
                AccessKind::Store => {
                    // An unresolved store address does NOT stop younger
                    // loads: they issue speculatively, and the violation
                    // check at address resolution squashes any load that
                    // guessed wrong (memory-dependence speculation).
                    if let Some(addr) = mem_side.addr {
                        store_data.insert(addr, Some(mem_side.data.expect("store data")));
                    }
                }
                AccessKind::Rmw => {
                    // Younger loads are held back by the blocking set
                    // anyway (atomics have acquire semantics).
                    if let Some(addr) = mem_side.addr {
                        if !mem_side.performed {
                            store_data.insert(addr, None);
                        }
                    }
                }
                AccessKind::Load => {
                    if entry.stage != Stage::MemWait {
                        continue; // not ready to issue, or already issued
                    }
                    if blocking_min.is_some_and(|b| b < seq) {
                        // An acquire fence or unperformed atomic blocks this
                        // load and everything younger.
                        break;
                    }
                    // Consistency-model issue gate. Under SC every access
                    // waits for all older accesses (including buffered
                    // stores); under TSO loads stay ordered among
                    // themselves but bypass stores; under RC anything goes.
                    match self.cfg.consistency {
                        ConsistencyModel::Sc => {
                            if self.outstanding_mem.range(..seq).next().is_some()
                                || !self.write_buffer.is_empty()
                                || self.wb_inflight > 0
                            {
                                break; // strictly in order: younger wait too
                            }
                        }
                        ConsistencyModel::Tso => {
                            if self.outstanding_loads.range(..seq).next().is_some() {
                                break; // load-load order
                            }
                        }
                        ConsistencyModel::Rc => {}
                    }
                    let addr = mem_side.addr.expect("MemWait implies address");
                    // Store-to-load forwarding: LSQ first (younger than the
                    // write buffer), then the write buffer (youngest entry).
                    if let Some(forward) = store_data.get(&addr) {
                        if let Some(value) = forward {
                            let value = *value;
                            self.forward_load(seq, addr, value, cycle, obs);
                            units -= 1;
                        }
                        // (None = unperformed atomic: the load waits.)
                        continue;
                    }
                    if let Some(e) = self.write_buffer.iter().rev().find(|e| e.addr == addr) {
                        let value = e.data;
                        self.forward_load(seq, addr, value, cycle, obs);
                        units -= 1;
                        continue;
                    }
                    // Issue to the memory system.
                    let line = LineAddr::containing(addr);
                    match mem.access(cycle, self.id, AccessKind::Load, line) {
                        Response::Hit { latency } => {
                            // Performs now; data reaches consumers after the
                            // hit latency.
                            let value = img.load(addr);
                            let e = self.entry_mut(seq).expect("entry");
                            e.result = Some(value);
                            e.stage = Stage::Executing;
                            e.mem.as_mut().expect("mem side").performed = true;
                            let ooo = self.note_perform(
                                obs,
                                seq,
                                AccessKind::Load,
                                addr,
                                Some(value),
                                None,
                                cycle,
                            );
                            self.bank_ooo(seq, ooo);
                            self.exec_inflight.push((cycle + latency, seq));
                            units -= 1;
                        }
                        Response::Pending { req } => {
                            let e = self.entry_mut(seq).expect("entry");
                            e.stage = Stage::MemPending;
                            e.mem.as_mut().expect("mem side").issued = true;
                            self.pending_reqs.insert(req, MemTarget::Rob(seq));
                            units -= 1;
                        }
                        Response::Retry => break,
                    }
                }
            }
        }
    }

    fn forward_load(
        &mut self,
        seq: u64,
        addr: u64,
        value: u64,
        cycle: u64,
        obs: &mut dyn CoreObserver,
    ) {
        self.stats.forwarded_loads += 1;
        let e = self.entry_mut(seq).expect("entry");
        e.result = Some(value);
        e.stage = Stage::Executing;
        e.mem.as_mut().expect("mem side").performed = true;
        let ooo = self.note_perform(obs, seq, AccessKind::Load, addr, Some(value), None, cycle);
        self.bank_ooo(seq, ooo);
        self.exec_inflight.push((cycle + 1, seq));
    }

    // ----- retire ----------------------------------------------------------

    fn retire(
        &mut self,
        cycle: u64,
        img: &mut MemImage,
        mem: &mut MemorySystem,
        obs: &mut dyn CoreObserver,
    ) {
        for _ in 0..self.cfg.issue_width {
            if self.halted {
                break;
            }
            let head = self.head_seq;
            let Some(entry) = self.entry(head) else {
                break; // ROB empty
            };
            // Head-of-ROB actions for atomics and fences.
            match entry.instr {
                Instr::Atomic { .. } => {
                    if entry.stage == Stage::MemWait {
                        // Release part: drain the write buffer first.
                        if !self.write_buffer.is_empty() || self.wb_inflight > 0 {
                            break;
                        }
                        let addr = entry.mem.as_ref().expect("mem side").addr.expect("address");
                        let line = LineAddr::containing(addr);
                        match mem.access(cycle, self.id, AccessKind::Rmw, line) {
                            Response::Hit { .. } => {
                                let (old, stored) = self.apply_rmw(img, head, addr);
                                {
                                    let e = self.entry_mut(head).expect("entry");
                                    e.mem.as_mut().expect("mem side").performed = true;
                                }
                                self.blocking.remove(&head);
                                let ooo = self.note_perform(
                                    obs,
                                    head,
                                    AccessKind::Rmw,
                                    addr,
                                    Some(old),
                                    stored,
                                    cycle,
                                );
                                self.bank_ooo(head, ooo);
                                self.complete_entry(head, Some(old));
                                // Falls through: may retire this cycle.
                            }
                            Response::Pending { req } => {
                                let e = self.entry_mut(head).expect("entry");
                                e.stage = Stage::MemPending;
                                e.mem.as_mut().expect("mem side").issued = true;
                                self.pending_reqs.insert(req, MemTarget::Rob(head));
                                break;
                            }
                            Response::Retry => break,
                        }
                    } else if entry.stage != Stage::Done {
                        break;
                    }
                }
                Instr::Fence(FenceKind::Release | FenceKind::Full)
                    if (!self.write_buffer.is_empty() || self.wb_inflight > 0) =>
                {
                    break;
                }
                Instr::Store { .. }
                    if entry.stage == Stage::Done
                        && self.write_buffer.len() >= self.cfg.write_buffer_entries =>
                {
                    self.stats.wb_stall_cycles += 1;
                    break;
                }
                _ => {}
            }
            let Some(entry) = self.entry(head) else {
                break;
            };
            if entry.stage != Stage::Done {
                break;
            }
            // Commit.
            let instr = entry.instr;
            let result = entry.result;
            let dest = entry.dest;
            let is_mem = instr.is_memory_access();
            let ooo = entry.mem.as_ref().is_some_and(|m| m.ooo);
            if let Instr::Store { .. } = instr {
                let m = entry.mem.as_ref().expect("mem side");
                let addr = m.addr.expect("address");
                let data = m.data.expect("data");
                self.write_buffer.push_back(WbEntry {
                    id: self.wb_next_id,
                    seq: head,
                    addr,
                    line: LineAddr::containing(addr),
                    data,
                    issued: false,
                    performed: false,
                });
                self.wb_next_id += 1;
            }
            obs.on_retire(head, is_mem, cycle);
            self.stats.retired += 1;
            match instr {
                Instr::Load { .. } => {
                    self.stats.loads += 1;
                    if ooo {
                        self.stats.ooo_loads += 1;
                    }
                }
                Instr::Store { .. } => self.stats.stores += 1,
                Instr::Atomic { .. } => {
                    self.stats.rmws += 1;
                    if ooo {
                        self.stats.ooo_stores += 1;
                    }
                }
                Instr::Halt => self.halted = true,
                _ => {}
            }
            if let Some(d) = dest {
                // In-order retirement: the architectural file always takes
                // the retiring value (later retirees overwrite). The map is
                // cleared only if no younger in-flight producer took over.
                self.committed[d.index()] = result.unwrap_or(0);
                if self.regmap[d.index()] == Some(head) {
                    self.regmap[d.index()] = None;
                }
            }
            if is_mem {
                let popped = self.lsq.pop_front();
                debug_assert_eq!(popped, Some(head), "LSQ must retire in order");
            }
            self.blocking.remove(&head);
            let idx = self.slot_of(head);
            self.slots[idx] = None;
            self.head_seq += 1;
        }
    }

    // ----- write buffer ----------------------------------------------------

    fn drain_write_buffer(
        &mut self,
        cycle: u64,
        img: &mut MemImage,
        mem: &mut MemorySystem,
        obs: &mut dyn CoreObserver,
    ) {
        if self.wb_inflight >= self.cfg.write_buffer_inflight {
            return;
        }
        // SC/TSO: the write buffer drains strictly FIFO, one store at a
        // time — only the front unperformed entry may issue.
        if self.cfg.consistency != ConsistencyModel::Rc {
            if self.wb_inflight > 0 {
                return;
            }
            let Some(front) = self.write_buffer.front() else {
                return;
            };
            if front.issued || front.performed {
                return;
            }
        }
        // Find the oldest unissued store whose line has no older store
        // still unperformed (same-line stores stay ordered; independent
        // lines overlap — the RC write buffer).
        let mut candidate: Option<u64> = None;
        let mut lines_blocked: Vec<LineAddr> = Vec::new();
        for e in &self.write_buffer {
            if !e.performed && e.issued {
                lines_blocked.push(e.line);
                continue;
            }
            if !e.issued && !e.performed {
                if lines_blocked.contains(&e.line) {
                    lines_blocked.push(e.line);
                    continue;
                }
                candidate = Some(e.id);
                break;
            }
        }
        let Some(id) = candidate else {
            return;
        };
        let (seq, addr, line, data) = {
            let e = self
                .write_buffer
                .iter()
                .find(|e| e.id == id)
                .expect("candidate exists");
            (e.seq, e.addr, e.line, e.data)
        };
        match mem.access(cycle, self.id, AccessKind::Store, line) {
            Response::Hit { .. } => {
                // Performs now (atomically with the hit decision — the
                // signature insertion must not race with incoming snoops;
                // see rr-mem's ordering invariants).
                let e = self
                    .write_buffer
                    .iter_mut()
                    .find(|e| e.id == id)
                    .expect("candidate exists");
                e.performed = true;
                img.store(addr, data);
                if self.note_perform(obs, seq, AccessKind::Store, addr, None, Some(data), cycle) {
                    self.stats.ooo_stores += 1;
                }
                self.pop_performed_wb();
            }
            Response::Pending { req } => {
                let e = self
                    .write_buffer
                    .iter_mut()
                    .find(|e| e.id == id)
                    .expect("candidate exists");
                e.issued = true;
                self.wb_inflight += 1;
                self.pending_reqs.insert(req, MemTarget::Wb(id));
            }
            Response::Retry => {}
        }
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch(&mut self, cycle: u64, obs: &mut dyn CoreObserver) {
        if cycle < self.redirect_ready_at {
            return;
        }
        for _ in 0..self.cfg.issue_width {
            if self.dispatch_stopped || self.halted {
                break;
            }
            if self.fetch_pc >= self.program.len() {
                self.dispatch_stopped = true;
                break;
            }
            if self.rob_len() >= self.cfg.rob_entries {
                self.stats.rob_stall_cycles += 1;
                break;
            }
            let instr = *self.program.get(self.fetch_pc).expect("checked length");
            let is_mem = instr.is_memory_access();
            if is_mem && self.lsq.len() >= self.cfg.lsq_entries {
                self.stats.lsq_stall_cycles += 1;
                break;
            }
            if !obs.on_dispatch(self.next_seq, is_mem) {
                self.stats.traq_stall_cycles += 1;
                break;
            }
            self.dispatch_one(instr);
        }
    }

    fn dispatch_one(&mut self, instr: Instr) {
        let seq = self.next_seq;
        let pc = self.fetch_pc as u32;
        self.next_seq += 1;

        let mut ops = [OpSlot::None; 3];
        let mut dest = None;
        let mut mem_side = None;
        let mut predicted_taken = false;
        let mut next_pc = self.fetch_pc + 1;
        let mut stage;

        match instr {
            Instr::Op { dst, a, b, .. } => {
                ops[0] = self.resolve_operand(a, seq);
                ops[1] = self.resolve_operand(b, seq);
                dest = Some(dst);
                stage = Stage::Waiting;
            }
            Instr::OpImm { dst, a, .. } => {
                ops[0] = self.resolve_operand(a, seq);
                dest = Some(dst);
                stage = Stage::Waiting;
            }
            Instr::LoadImm { dst, imm } => {
                dest = Some(dst);
                stage = Stage::Done;
                // Result set below via entry construction.
                ops[0] = OpSlot::Ready(imm as u64);
            }
            Instr::Load { dst, base, .. } => {
                ops[0] = self.resolve_operand(base, seq);
                dest = Some(dst);
                mem_side = Some(MemSide {
                    kind: AccessKind::Load,
                    addr: None,
                    data: None,
                    expected: None,
                    performed: false,
                    issued: false,
                    ooo: false,
                });
                stage = Stage::Waiting;
            }
            Instr::Store { src, base, .. } => {
                ops[0] = self.resolve_operand(base, seq);
                ops[1] = self.resolve_operand(src, seq);
                mem_side = Some(MemSide {
                    kind: AccessKind::Store,
                    addr: None,
                    data: None,
                    expected: None,
                    performed: false,
                    issued: false,
                    ooo: false,
                });
                stage = Stage::Waiting;
            }
            Instr::Atomic {
                dst,
                addr,
                expected,
                operand,
                ..
            } => {
                ops[0] = self.resolve_operand(addr, seq);
                ops[1] = self.resolve_operand(expected, seq);
                ops[2] = self.resolve_operand(operand, seq);
                dest = Some(dst);
                mem_side = Some(MemSide {
                    kind: AccessKind::Rmw,
                    addr: None,
                    data: None,
                    expected: None,
                    performed: false,
                    issued: false,
                    ooo: false,
                });
                self.blocking.insert(seq);
                stage = Stage::Waiting;
            }
            Instr::Branch { a, b, target, .. } => {
                ops[0] = self.resolve_operand(a, seq);
                ops[1] = self.resolve_operand(b, seq);
                predicted_taken = self.predictor.predict(pc);
                next_pc = if predicted_taken {
                    target as usize
                } else {
                    self.fetch_pc + 1
                };
                stage = Stage::Waiting;
            }
            Instr::Jump { target } => {
                next_pc = target as usize;
                stage = Stage::Done;
            }
            Instr::Fence(kind) => {
                if matches!(kind, FenceKind::Acquire | FenceKind::Full) {
                    self.blocking.insert(seq);
                }
                stage = Stage::Done;
            }
            Instr::Nop => stage = Stage::Done,
            Instr::Halt => {
                self.dispatch_stopped = true;
                stage = Stage::Done;
            }
        }

        // Promote to Ready when all operands resolved at dispatch.
        let needs_exec = matches!(
            instr,
            Instr::Op { .. }
                | Instr::OpImm { .. }
                | Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Atomic { .. }
                | Instr::Branch { .. }
        );
        let ops_ready = !ops.iter().any(|o| matches!(o, OpSlot::Wait(_)));
        if needs_exec && ops_ready {
            stage = Stage::Ready;
        }

        let result = if let Instr::LoadImm { imm, .. } = instr {
            Some(imm as u64)
        } else {
            None
        };

        let entry = RobEntry {
            seq,
            pc,
            instr,
            ops,
            stage,
            result,
            dest,
            predicted_taken,
            mem: mem_side,
        };
        let idx = self.slot_of(seq);
        debug_assert!(self.slots[idx].is_none(), "ROB slot in use");
        self.slots[idx] = Some(entry);

        if let Some(d) = dest {
            self.regmap[d.index()] = Some(seq);
        }
        if instr.is_memory_access() {
            self.lsq.push_back(seq);
            self.outstanding_mem.insert(seq);
            if !matches!(instr, Instr::Store { .. }) {
                self.outstanding_loads.insert(seq);
            }
        }
        if stage == Stage::Ready {
            self.ready_q.push_back(seq);
        }
        self.fetch_pc = next_pc;
    }

    fn resolve_operand(&mut self, reg: Reg, consumer: u64) -> OpSlot {
        match self.regmap[reg.index()] {
            None => OpSlot::Ready(self.committed[reg.index()]),
            Some(producer) => {
                let done = self
                    .entry(producer)
                    .map(|e| (e.stage == Stage::Done, e.result))
                    .expect("producer is live");
                if done.0 {
                    OpSlot::Ready(done.1.unwrap_or(0))
                } else {
                    self.waiters.entry(producer).or_default().push(consumer);
                    OpSlot::Wait(producer)
                }
            }
        }
    }

    /// Memory-dependence speculation recovery: when a store (or RMW)
    /// resolves its address, any *younger* load that already performed on
    /// the same word guessed wrong and is squashed together with everything
    /// after it (it re-executes and then forwards correctly). This is the
    /// "speculative load is squashed and replayed due to memory consistency
    /// requirements" case the paper's TRAQ handles by overwrite (§4.1).
    fn check_memory_order(
        &mut self,
        store_seq: u64,
        addr: u64,
        cycle: u64,
        obs: &mut dyn CoreObserver,
    ) {
        let mut victim: Option<(u64, u32)> = None;
        for &s in &self.lsq {
            if s <= store_seq {
                continue;
            }
            let Some(e) = self.entry(s) else { continue };
            let m = e.mem.as_ref().expect("LSQ entry has a mem side");
            // Performed loads read a stale value; issued-but-unperformed
            // loads *will* read memory without this store's value. Both
            // guessed wrong.
            if m.kind == AccessKind::Load && (m.performed || m.issued) && m.addr == Some(addr) {
                victim = Some((s, e.pc));
                break; // LSQ is in program order: this is the oldest victim
            }
        }
        if let Some((seq, pc)) = victim {
            self.stats.memory_order_squashes += 1;
            self.squash_after(seq - 1, pc as usize, cycle, obs);
        }
    }

    // ----- squash ----------------------------------------------------------

    fn squash_after(&mut self, bseq: u64, new_pc: usize, cycle: u64, obs: &mut dyn CoreObserver) {
        self.stats.squashes += 1;
        for seq in (bseq + 1)..self.next_seq {
            let idx = self.slot_of(seq);
            if let Some(e) = self.slots[idx].take() {
                debug_assert_eq!(e.seq, seq);
                self.outstanding_mem.remove(&seq);
                self.outstanding_loads.remove(&seq);
                self.blocking.remove(&seq);
            }
        }
        while self.lsq.back().is_some_and(|&s| s > bseq) {
            self.lsq.pop_back();
        }
        self.exec_inflight.retain(|&(_, s)| s <= bseq);
        self.ready_q.retain(|&s| s <= bseq);
        // Orphan in-flight requests of squashed instructions: their seqs
        // will be reused by the re-dispatched path.
        for target in self.pending_reqs.values_mut() {
            if let MemTarget::Rob(s) = target {
                if *s > bseq {
                    *target = MemTarget::Orphan;
                }
            }
        }
        self.next_seq = bseq + 1;
        // Rebuild the register map from the surviving entries.
        self.regmap = [None; NUM_REGS];
        for seq in self.head_seq..self.next_seq {
            if let Some(e) = self.entry(seq) {
                if let Some(d) = e.dest {
                    self.regmap[d.index()] = Some(seq);
                }
            }
        }
        self.fetch_pc = new_pc;
        self.dispatch_stopped = false;
        self.redirect_ready_at = cycle + self.cfg.mispredict_penalty;
        obs.on_squash_after(bseq, cycle);
    }
}
