//! # rr-cpu — out-of-order core model for the RelaxReplay reproduction
//!
//! A 4-issue out-of-order superscalar core (paper §5.1, Table 1: 176-entry
//! ROB, 128-entry load/store queue, 2 load/store units, write buffer) that
//! executes the `rr-isa` instruction set under a **release-consistent**
//! memory model: loads issue and perform out of program order, stores drain
//! from a write buffer with overlapping coherence transactions, and fences /
//! atomics restore order where workloads ask for it.
//!
//! The core exposes the exact event stream the RelaxReplay recorder consumes
//! (paper §4.1: "instruction dispatch into the ROB, instruction retirement,
//! memory operation performed, and pipeline squash") through the
//! [`CoreObserver`] trait. The recorder lives in the `relaxreplay` crate and
//! is attached by the simulator; [`NullObserver`] runs the core bare.
//!
//! Timing semantics shared with `rr-mem`: an access that hits in the L1
//! *performs immediately* (its value is sampled and `on_perform` fires in
//! the same cycle), while misses perform when their completion is delivered.
//! See `rr-mem`'s crate docs for why this makes every cross-core conflict
//! observable to interval-based recording.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod core;
mod events;
mod predictor;
mod stats;

pub use crate::core::Core;
pub use config::{ConsistencyModel, CpuConfig};
pub use events::{CoreObserver, FanoutObserver, NullObserver, PerformRecord};
pub use predictor::Predictor;
pub use stats::CoreStats;
