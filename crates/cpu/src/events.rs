use rr_mem::{AccessKind, LineAddr};

/// Everything the recorder needs to know about a memory access's **perform**
/// event (paper §3.1): a load performs when its data arrives (including
/// store-to-load forwards); a store performs when its coherence transaction
/// completes; an atomic RMW performs as a single event carrying both its
/// loaded and stored values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerformRecord {
    /// The instruction's per-core sequence number (program order).
    pub seq: u64,
    /// Load, store or RMW.
    pub kind: AccessKind,
    /// The byte address accessed.
    pub addr: u64,
    /// The cache line accessed (conflict granularity).
    pub line: LineAddr,
    /// Value read, for loads and RMWs.
    pub loaded: Option<u64>,
    /// Value written, for stores and successful RMWs.
    pub stored: Option<u64>,
    /// The cycle the access performed.
    pub cycle: u64,
}

/// Hooks through which a per-core Memory Race Recorder observes the core.
///
/// The core calls these in deterministic order within a cycle. Sequence
/// numbers are per-core and strictly increasing in program order among live
/// instructions. After `on_squash_after(seq)`, numbers greater than `seq`
/// are dead and **will be reused** by the re-dispatched correct path — this
/// matches the paper's TRAQ, where "its entry in the TRAQ will be correctly
/// overwritten upon the re-execution of the instruction" (§4.1).
pub trait CoreObserver {
    /// An instruction was dispatched into the ROB. `is_mem` marks loads,
    /// stores and RMWs (the instructions that occupy TRAQ entries).
    ///
    /// Returning `false` refuses the dispatch (the TRAQ is full); the core
    /// stalls and retries next cycle. Refusals must be stateless: the same
    /// dispatch will be offered again.
    fn on_dispatch(&mut self, seq: u64, is_mem: bool) -> bool;

    /// A memory access performed.
    fn on_perform(&mut self, record: &PerformRecord);

    /// An instruction retired (left the ROB in program order).
    fn on_retire(&mut self, seq: u64, is_mem: bool, cycle: u64);

    /// All instructions with sequence numbers **greater than** `seq` were
    /// squashed (branch misprediction) at `cycle`.
    fn on_squash_after(&mut self, seq: u64, cycle: u64);
}

/// An observer that ignores everything and never stalls the core.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl CoreObserver for NullObserver {
    fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
        true
    }
    fn on_perform(&mut self, _record: &PerformRecord) {}
    fn on_retire(&mut self, _seq: u64, _is_mem: bool, _cycle: u64) {}
    fn on_squash_after(&mut self, _seq: u64, _cycle: u64) {}
}

/// Fans events out to a list of observers (used by the simulator to attach
/// several recorder variants — Base/Opt × interval sizes — to one
/// execution). A dispatch is allowed only if **every** observer allows it;
/// observers must therefore be deterministic and agree on TRAQ occupancy,
/// which holds for RelaxReplay variants because TRAQ dynamics do not depend
/// on the Base/Opt distinction or the interval length.
pub struct FanoutObserver<'a> {
    observers: Vec<&'a mut dyn CoreObserver>,
}

impl<'a> FanoutObserver<'a> {
    /// Creates a fan-out over `observers`.
    #[must_use]
    pub fn new(observers: Vec<&'a mut dyn CoreObserver>) -> Self {
        FanoutObserver { observers }
    }
}

impl std::fmt::Debug for FanoutObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FanoutObserver({} observers)", self.observers.len())
    }
}

impl CoreObserver for FanoutObserver<'_> {
    fn on_dispatch(&mut self, seq: u64, is_mem: bool) -> bool {
        // Evaluate all observers (no short-circuit) so their views of the
        // offer stay identical; all must agree.
        let mut ok = true;
        for o in &mut self.observers {
            ok &= o.on_dispatch(seq, is_mem);
        }
        ok
    }
    fn on_perform(&mut self, record: &PerformRecord) {
        for o in &mut self.observers {
            o.on_perform(record);
        }
    }
    fn on_retire(&mut self, seq: u64, is_mem: bool, cycle: u64) {
        for o in &mut self.observers {
            o.on_retire(seq, is_mem, cycle);
        }
    }
    fn on_squash_after(&mut self, seq: u64, cycle: u64) {
        for o in &mut self.observers {
            o.on_squash_after(seq, cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Veto(bool, u32);
    impl CoreObserver for Veto {
        fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
            self.1 += 1;
            self.0
        }
        fn on_perform(&mut self, _r: &PerformRecord) {}
        fn on_retire(&mut self, _s: u64, _m: bool, _c: u64) {}
        fn on_squash_after(&mut self, _s: u64, _c: u64) {}
    }

    #[test]
    fn fanout_requires_unanimity_and_offers_to_all() {
        let mut a = Veto(true, 0);
        let mut b = Veto(false, 0);
        {
            let mut f = FanoutObserver::new(vec![&mut a, &mut b]);
            assert!(!f.on_dispatch(0, true));
        }
        assert_eq!(a.1, 1);
        assert_eq!(b.1, 1, "refusing observer must still see the offer");
    }

    #[test]
    fn null_observer_never_stalls() {
        let mut n = NullObserver;
        assert!(n.on_dispatch(0, true));
    }
}
