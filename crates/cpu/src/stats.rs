/// Per-core execution statistics.
///
/// `ooo_loads` / `ooo_stores` count accesses that performed while an older
/// memory instruction was still unperformed — the quantity Figure 1 of the
/// paper reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Atomic RMWs retired.
    pub rmws: u64,
    /// Loads that performed out of program order (an older memory access
    /// was still pending at their perform time).
    pub ooo_loads: u64,
    /// Stores that performed out of program order.
    pub ooo_stores: u64,
    /// Loads serviced by store-to-load forwarding (LSQ or write buffer).
    pub forwarded_loads: u64,
    /// Pipeline squashes (branch mispredictions plus memory-order
    /// violations; each flushes the ROB and TRAQ).
    pub squashes: u64,
    /// Squashes caused by a load speculatively bypassing an older store to
    /// the same address (memory-dependence misspeculation).
    pub memory_order_squashes: u64,
    /// Cycles in which dispatch was stalled because the observer (TRAQ)
    /// refused an instruction.
    pub traq_stall_cycles: u64,
    /// Cycles in which dispatch was stalled because the ROB was full.
    pub rob_stall_cycles: u64,
    /// Cycles in which dispatch was stalled because the LSQ was full.
    pub lsq_stall_cycles: u64,
    /// Cycles in which a store could not retire because the write buffer
    /// was full.
    pub wb_stall_cycles: u64,
    /// Cycles from the first tick until the core finished.
    pub active_cycles: u64,
}

impl CoreStats {
    /// Total memory-access instructions retired.
    #[must_use]
    pub fn mem_instrs(&self) -> u64 {
        self.loads + self.stores + self.rmws
    }

    /// Fraction of memory accesses that performed out of order, in
    /// `[0, 1]` (Figure 1's metric).
    #[must_use]
    pub fn ooo_fraction(&self) -> f64 {
        let mem = self.mem_instrs();
        if mem == 0 {
            return 0.0;
        }
        (self.ooo_loads + self.ooo_stores) as f64 / mem as f64
    }

    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.active_cycles == 0 {
            return 0.0;
        }
        self.retired as f64 / self.active_cycles as f64
    }

    /// Every counter as a `(name, value)` pair, for the metrics registry.
    ///
    /// Names are stable identifiers (they end up in JSONL sidecars that
    /// downstream tooling diffs across runs); add to this list, never
    /// rename.
    #[must_use]
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("retired", self.retired),
            ("loads", self.loads),
            ("stores", self.stores),
            ("rmws", self.rmws),
            ("ooo_loads", self.ooo_loads),
            ("ooo_stores", self.ooo_stores),
            ("forwarded_loads", self.forwarded_loads),
            ("squashes", self.squashes),
            ("memory_order_squashes", self.memory_order_squashes),
            ("traq_stall_cycles", self.traq_stall_cycles),
            ("rob_stall_cycles", self.rob_stall_cycles),
            ("lsq_stall_cycles", self.lsq_stall_cycles),
            ("wb_stall_cycles", self.wb_stall_cycles),
            ("active_cycles", self.active_cycles),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero() {
        let s = CoreStats::default();
        assert_eq!(s.ooo_fraction(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn ooo_fraction_counts_loads_and_stores() {
        let s = CoreStats {
            loads: 6,
            stores: 3,
            rmws: 1,
            ooo_loads: 4,
            ooo_stores: 1,
            ..CoreStats::default()
        };
        assert!((s.ooo_fraction() - 0.5).abs() < 1e-12);
    }
}
