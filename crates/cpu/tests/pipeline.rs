//! End-to-end tests of the out-of-order core against the coherent memory
//! system: functional correctness vs. the sequential interpreter,
//! store-to-load forwarding, out-of-order performs, misprediction recovery,
//! and multi-threaded synchronization under release consistency.

use rr_cpu::{Core, CoreObserver, CoreStats, CpuConfig, NullObserver, PerformRecord};
use rr_isa::{BranchCond, FenceKind, Interp, MemImage, Program, ProgramBuilder, Reg, StopReason};
use rr_mem::{MemConfig, MemorySystem};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

struct RunResult {
    img: MemImage,
    stats: Vec<CoreStats>,
    committed: Vec<Vec<u64>>,
    cycles: u64,
}

/// Runs one core per program to completion on a shared memory system.
fn run_system(programs: &[Program]) -> RunResult {
    run_system_with(programs, &mut NullObserver, MemImage::new())
}

fn run_system_with(
    programs: &[Program],
    obs: &mut dyn CoreObserver,
    mut img: MemImage,
) -> RunResult {
    let cfg = CpuConfig::splash_default();
    let mut mem = MemorySystem::new(MemConfig::splash_default(programs.len()));
    let mut cores: Vec<Core> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| Core::new(rr_mem::CoreId::new(i as u8), cfg.clone(), p))
        .collect();
    let mut cycle = 0;
    loop {
        let out = mem.tick(cycle);
        for c in out.completions {
            cores[c.core.index()].push_completion(c.req);
        }
        for core in &mut cores {
            core.tick(cycle, &mut img, &mut mem, obs);
        }
        if cores.iter().all(Core::is_done) && mem.quiescent() {
            break;
        }
        cycle += 1;
        assert!(cycle < 50_000_000, "system deadlocked");
    }
    RunResult {
        img,
        committed: cores
            .iter()
            .map(|c| (0..32).map(|i| c.committed_reg(r(i))).collect())
            .collect(),
        stats: cores.into_iter().map(|c| c.stats().clone()).collect(),
        cycles: cycle,
    }
}

/// Runs `program` on the reference interpreter.
fn run_interp(program: &Program) -> (MemImage, Vec<u64>) {
    let mut img = MemImage::new();
    let mut interp = Interp::new(program);
    assert_eq!(interp.run(&mut img, 100_000_000), StopReason::Halted);
    (img, (0..32).map(|i| interp.reg(r(i))).collect())
}

#[test]
fn single_thread_matches_interpreter() {
    // A loop with loads, stores and data-dependent arithmetic.
    let mut b = ProgramBuilder::new();
    let (i, sum, limit, base, tmp) = (r(1), r(2), r(3), r(4), r(5));
    b.load_imm(i, 0)
        .load_imm(sum, 0)
        .load_imm(limit, 64)
        .load_imm(base, 0x1000);
    let top = b.bind_new();
    // mem[base + 8*i] = i*3; tmp = mem[base + 8*i]; sum += tmp
    b.op_imm(rr_isa::AluOp::Mul, tmp, i, 3);
    b.op_imm(rr_isa::AluOp::Shl, r(6), i, 3);
    b.add(r(7), base, r(6));
    b.store(tmp, r(7), 0);
    b.load(r(8), r(7), 0);
    b.add(sum, sum, r(8));
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, limit, top);
    b.halt();
    let p = b.build();

    let (ref_img, ref_regs) = run_interp(&p);
    let run = run_system(std::slice::from_ref(&p));
    assert!(run.img.contents_eq(&ref_img), "memory must match");
    assert_eq!(run.committed[0], ref_regs, "registers must match");
    // Dynamic instruction count: 4 setup + 64 iterations of 8 + halt.
    assert_eq!(run.stats[0].retired, 4 + 64 * 8 + 1);
}

#[test]
fn store_to_load_forwarding_supplies_pending_store() {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x2000);
    b.load_imm(r(2), 77);
    b.store(r(2), r(1), 0);
    b.load(r(3), r(1), 0); // must forward from the LSQ or write buffer
    b.halt();
    let p = b.build();
    let run = run_system(std::slice::from_ref(&p));
    assert_eq!(run.committed[0][3], 77);
    assert!(
        run.stats[0].forwarded_loads >= 1,
        "the load should have been forwarded, stats: {:?}",
        run.stats[0]
    );
}

#[test]
fn independent_loads_perform_out_of_order() {
    // Warm a line, then issue a cold miss followed by a hit to the warm
    // line: the hit performs in ~2 cycles while the miss is still pending.
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x9000);
    b.load(r(2), r(1), 0x40); // warm the second line
    b.nops(800); // let the warming miss complete (~170 cycles)
    b.load(r(3), r(1), 0x2000); // cold miss (~170 cycles)
    b.load(r(4), r(1), 0x40); // hits; performs while the miss is pending
    b.halt();
    let p = b.build();
    let run = run_system(std::slice::from_ref(&p));
    assert!(
        run.stats[0].ooo_loads >= 1,
        "later loads should perform while the first is pending: {:?}",
        run.stats[0]
    );
}

#[test]
fn mispredicted_branches_recover_correctly() {
    // A branch whose direction alternates every iteration defeats 2-bit
    // counters, forcing squashes; the architectural result must still be
    // exact.
    let mut b = ProgramBuilder::new();
    let (i, acc, limit) = (r(1), r(2), r(3));
    b.load_imm(i, 0).load_imm(acc, 0).load_imm(limit, 100);
    let top = b.bind_new();
    let odd = b.label();
    let join = b.label();
    b.op_imm(rr_isa::AluOp::And, r(4), i, 1);
    b.branch(BranchCond::Ne, r(4), Reg::ZERO, odd);
    b.add_imm(acc, acc, 5); // even path
    b.jump(join);
    b.bind(odd);
    b.add_imm(acc, acc, 1); // odd path
    b.bind(join);
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, limit, top);
    b.halt();
    let p = b.build();

    let (_, ref_regs) = run_interp(&p);
    let run = run_system(std::slice::from_ref(&p));
    assert_eq!(run.committed[0][2], ref_regs[2]);
    assert!(
        run.stats[0].squashes > 10,
        "alternating branch must mispredict: {:?}",
        run.stats[0].squashes
    );
}

/// Builds the classic message-passing producer: data then release-fence
/// then flag.
fn mp_producer(data_addr: i64, flag_addr: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), data_addr);
    b.load_imm(r(2), 4242);
    b.store(r(2), r(1), 0);
    b.fence(FenceKind::Release);
    b.load_imm(r(3), flag_addr);
    b.load_imm(r(4), 1);
    b.store(r(4), r(3), 0);
    b.halt();
    b.build()
}

/// Spin on the flag, acquire-fence, then read data.
fn mp_consumer(data_addr: i64, flag_addr: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), flag_addr);
    b.load_imm(r(2), 1);
    let spin = b.bind_new();
    b.load(r(3), r(1), 0);
    b.branch(BranchCond::Ne, r(3), r(2), spin);
    b.fence(FenceKind::Acquire);
    b.load_imm(r(4), data_addr);
    b.load(r(5), r(4), 0);
    b.halt();
    b.build()
}

#[test]
fn message_passing_with_fences_is_ordered() {
    // Different cache lines for data and flag, so reordering would be
    // possible without the fences.
    let programs = vec![mp_producer(0x100, 0x200), mp_consumer(0x100, 0x200)];
    let run = run_system(&programs);
    assert_eq!(run.committed[1][5], 4242, "consumer must see the data");
    assert_eq!(run.img.load(0x100), 4242);
    assert_eq!(run.img.load(0x200), 1);
}

#[test]
fn atomic_fetch_add_from_many_threads_sums() {
    let counter = 0x4000;
    let per_thread = 50;
    let make = || {
        let mut b = ProgramBuilder::new();
        let (addr, one, i, n) = (r(1), r(2), r(3), r(4));
        b.load_imm(addr, counter)
            .load_imm(one, 1)
            .load_imm(i, 0)
            .load_imm(n, per_thread);
        let top = b.bind_new();
        b.fetch_add(r(5), addr, one);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, n, top);
        b.halt();
        b.build()
    };
    let programs: Vec<Program> = (0..4).map(|_| make()).collect();
    let run = run_system(&programs);
    assert_eq!(run.img.load(counter as u64), 4 * per_thread as u64);
    assert_eq!(run.stats[0].rmws, per_thread as u64);
}

#[test]
fn cas_spinlock_protects_critical_section() {
    let lock = 0x5000;
    let counter = 0x5100;
    let rounds = 25;
    let make = || {
        let mut b = ProgramBuilder::new();
        let (laddr, caddr, zero, one, i, n, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        b.load_imm(laddr, lock)
            .load_imm(caddr, counter)
            .load_imm(zero, 0)
            .load_imm(one, 1)
            .load_imm(i, 0)
            .load_imm(n, rounds);
        let top = b.bind_new();
        let acquire = b.bind_new();
        b.cas(r(8), laddr, zero, one);
        b.branch(BranchCond::Ne, r(8), zero, acquire);
        // Critical section: non-atomic read-modify-write.
        b.load(tmp, caddr, 0);
        b.add_imm(tmp, tmp, 1);
        b.store(tmp, caddr, 0);
        // Unlock: release fence, then plain store.
        b.fence(FenceKind::Release);
        b.store(zero, laddr, 0);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, n, top);
        b.halt();
        b.build()
    };
    let programs: Vec<Program> = (0..2).map(|_| make()).collect();
    let run = run_system(&programs);
    assert_eq!(
        run.img.load(counter as u64),
        2 * rounds as u64,
        "lost update: lock is broken"
    );
}

#[test]
fn execution_is_deterministic() {
    let programs = vec![mp_producer(0x100, 0x200), mp_consumer(0x100, 0x200)];
    let a = run_system(&programs);
    let b = run_system(&programs);
    assert_eq!(a.img.digest(), b.img.digest());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn program_without_halt_finishes() {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 5);
    let p = b.build();
    let run = run_system(std::slice::from_ref(&p));
    assert_eq!(run.committed[0][1], 5);
}

#[test]
fn observer_refusals_stall_but_preserve_correctness() {
    /// Refuses every other dispatch offer.
    struct Flaky(bool);
    impl CoreObserver for Flaky {
        fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
            self.0 = !self.0;
            self.0
        }
        fn on_perform(&mut self, _r: &PerformRecord) {}
        fn on_retire(&mut self, _s: u64, _m: bool, _c: u64) {}
        fn on_squash_after(&mut self, _s: u64, _c: u64) {}
    }
    let mut bld = ProgramBuilder::new();
    let (i, sum, limit) = (r(1), r(2), r(3));
    bld.load_imm(i, 0).load_imm(sum, 0).load_imm(limit, 40);
    let top = bld.bind_new();
    bld.add(sum, sum, i).add_imm(i, i, 1);
    bld.branch(BranchCond::Lt, i, limit, top);
    bld.halt();
    let p = bld.build();
    let (_, ref_regs) = run_interp(&p);
    let mut obs = Flaky(false);
    let run = run_system_with(std::slice::from_ref(&p), &mut obs, MemImage::new());
    assert_eq!(run.committed[0][2], ref_regs[2]);
    assert!(run.stats[0].traq_stall_cycles > 0);
}

#[test]
fn perform_events_carry_values_and_retire_is_in_order() {
    #[derive(Default)]
    struct Collect {
        performs: Vec<PerformRecord>,
        retires: Vec<u64>,
    }
    impl CoreObserver for Collect {
        fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
            true
        }
        fn on_perform(&mut self, rec: &PerformRecord) {
            self.performs.push(*rec);
        }
        fn on_retire(&mut self, seq: u64, _m: bool, _c: u64) {
            self.retires.push(seq);
        }
        fn on_squash_after(&mut self, seq: u64, _cycle: u64) {
            self.performs.retain(|p| p.seq <= seq);
            self.retires.retain(|&s| s <= seq);
        }
    }
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x3000);
    b.load_imm(r(2), 9);
    b.store(r(2), r(1), 0);
    b.load(r(3), r(1), 0);
    b.halt();
    let p = b.build();
    let mut obs = Collect::default();
    let _ = run_system_with(std::slice::from_ref(&p), &mut obs, MemImage::new());
    // Retirement is in program order.
    let mut sorted = obs.retires.clone();
    sorted.sort_unstable();
    assert_eq!(obs.retires, sorted);
    // The store perform carries its value; the load perform carries the
    // loaded (possibly forwarded) value.
    assert!(obs
        .performs
        .iter()
        .any(|p| p.kind == rr_mem::AccessKind::Store && p.stored == Some(9)));
    assert!(obs
        .performs
        .iter()
        .any(|p| p.kind == rr_mem::AccessKind::Load && p.loaded == Some(9)));
}
