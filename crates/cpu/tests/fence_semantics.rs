//! Observable release-consistency semantics of fences and atomics in the
//! core: acquire blocks younger loads, release drains the write buffer,
//! atomics do both — checked through the perform-event stream.

use rr_cpu::{Core, CoreObserver, CpuConfig, PerformRecord};
use rr_isa::{FenceKind, MemImage, Program, ProgramBuilder, Reg};
use rr_mem::{AccessKind, CoreId, MemConfig, MemorySystem};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Collects perform events in order, with cycles.
#[derive(Default)]
struct PerformLog {
    events: Vec<(u64, AccessKind, u64, u64)>, // (seq, kind, addr, cycle)
}

impl CoreObserver for PerformLog {
    fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
        true
    }
    fn on_perform(&mut self, rec: &PerformRecord) {
        self.events.push((rec.seq, rec.kind, rec.addr, rec.cycle));
    }
    fn on_retire(&mut self, _s: u64, _m: bool, _c: u64) {}
    fn on_squash_after(&mut self, seq: u64, _cycle: u64) {
        self.events.retain(|e| e.0 <= seq);
    }
}

fn run(p: &Program) -> PerformLog {
    let mut mem = MemorySystem::new(MemConfig::splash_default(1));
    let mut img = MemImage::new();
    let mut core = Core::new(CoreId::new(0), CpuConfig::splash_default(), p);
    let mut obs = PerformLog::default();
    let mut cycle = 0;
    loop {
        let out = mem.tick(cycle);
        for c in out.completions {
            core.push_completion(c.req);
        }
        core.tick(cycle, &mut img, &mut mem, &mut obs);
        if core.is_done() && mem.quiescent() {
            return obs;
        }
        cycle += 1;
        assert!(cycle < 1_000_000, "deadlock");
    }
}

fn perform_cycle_of(log: &PerformLog, addr: u64) -> u64 {
    log.events
        .iter()
        .find(|e| e.2 == addr)
        .unwrap_or_else(|| panic!("no perform at {addr:#x}"))
        .3
}

#[test]
fn without_acquire_a_young_load_overtakes_a_miss() {
    // Cold miss to A (slow), then a load to B: without a fence, B performs
    // before A.
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 0x8000);
    b.load(r(3), r(1), 0); // A: cold miss
    b.load(r(4), r(2), 0); // B: also a miss, but issued concurrently
    b.halt();
    let log = run(&b.build());
    // Both miss; they overlap — B must NOT wait for A's completion plus
    // its own full latency (i.e. performs within the overlap window).
    let (a, bb) = (
        perform_cycle_of(&log, 0x1000),
        perform_cycle_of(&log, 0x8000),
    );
    assert!(bb < a + 50, "loads should overlap: A at {a}, B at {bb}");
}

#[test]
fn acquire_fence_blocks_younger_loads() {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 0x8000);
    b.load(r(3), r(1), 0); // A: cold miss (~170 cycles)
    b.fence(FenceKind::Acquire);
    b.load(r(4), r(2), 0); // B: must wait for the fence to retire
    b.halt();
    let log = run(&b.build());
    let (a, bb) = (
        perform_cycle_of(&log, 0x1000),
        perform_cycle_of(&log, 0x8000),
    );
    assert!(
        bb > a,
        "B ({bb}) must perform after A ({a}): the acquire fence orders them"
    );
}

#[test]
fn release_fence_drains_the_write_buffer_before_later_stores() {
    // ST A (cold miss, slow); release; ST B. Without the fence the two
    // independent stores overlap; with it, B's perform must follow A's.
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 0x8000);
    b.load_imm(r(3), 7);
    b.store(r(3), r(1), 0);
    b.fence(FenceKind::Release);
    b.store(r(3), r(2), 0);
    b.halt();
    let log = run(&b.build());
    let (a, bb) = (
        perform_cycle_of(&log, 0x1000),
        perform_cycle_of(&log, 0x8000),
    );
    assert!(bb > a, "B ({bb}) must perform after A ({a})");
}

#[test]
fn stores_overlap_without_a_release_fence() {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 0x8000);
    b.load_imm(r(3), 7);
    b.store(r(3), r(1), 0);
    b.store(r(3), r(2), 0);
    b.halt();
    let log = run(&b.build());
    let (a, bb) = (
        perform_cycle_of(&log, 0x1000),
        perform_cycle_of(&log, 0x8000),
    );
    // Cold misses ~170 cycles each; overlapping means B completes well
    // before A + 170.
    assert!(
        bb < a + 50,
        "independent stores should overlap: {a} vs {bb}"
    );
}

#[test]
fn atomics_order_both_sides() {
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 0x8000);
    b.load_imm(r(3), 0x4000);
    b.load_imm(r(4), 1);
    b.store(r(4), r(1), 0); // older store
    b.fetch_add(r(5), r(3), r(4)); // atomic: drains WB, blocks younger
    b.load(r(6), r(2), 0); // younger load
    b.halt();
    let log = run(&b.build());
    let st = perform_cycle_of(&log, 0x1000);
    let rmw = perform_cycle_of(&log, 0x4000);
    let ld = perform_cycle_of(&log, 0x8000);
    assert!(
        st < rmw,
        "atomic must wait for the write buffer ({st} !< {rmw})"
    );
    assert!(
        rmw < ld,
        "younger load must wait for the atomic ({rmw} !< {ld})"
    );
}

#[test]
fn same_line_stores_stay_ordered_in_the_write_buffer() {
    // Two stores to the same line must perform in program order even
    // though independent-line stores may overlap.
    let mut b = ProgramBuilder::new();
    b.load_imm(r(1), 0x1000);
    b.load_imm(r(2), 1);
    b.load_imm(r(3), 2);
    b.store(r(2), r(1), 0); // word 0
    b.store(r(3), r(1), 8); // word 1, same 32-byte line
    b.halt();
    let log = run(&b.build());
    let first = perform_cycle_of(&log, 0x1000);
    let second = perform_cycle_of(&log, 0x1008);
    assert!(
        first <= second,
        "same-line stores reordered: {first} vs {second}"
    );
}
