//! Differential property test: arbitrary single-thread programs (including
//! data-dependent branches, loops with bounded trip counts, loads, stores
//! and atomics) must produce exactly the interpreter's architectural state
//! when run on the out-of-order core — speculation, forwarding and
//! reordering must never be architecturally visible.

use proptest::prelude::*;
use rr_cpu::{Core, CpuConfig, NullObserver};
use rr_isa::{AluOp, BranchCond, Interp, MemImage, Program, ProgramBuilder, Reg, StopReason};
use rr_mem::{CoreId, MemConfig, MemorySystem};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

#[derive(Clone, Debug)]
enum Op {
    Alu {
        op: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
    AluImm {
        op: u8,
        dst: u8,
        a: u8,
        imm: i16,
    },
    LoadImm {
        dst: u8,
        imm: i16,
    },
    Load {
        dst: u8,
        slot: u8,
    },
    Store {
        src: u8,
        slot: u8,
    },
    FetchAdd {
        dst: u8,
        slot: u8,
        operand: u8,
    },
    /// A bounded countdown loop with a small body of ALU work.
    Loop {
        iters: u8,
        body: u8,
    },
    /// A data-dependent forward branch skipping the next chunk.
    SkipIfEven {
        reg: u8,
    },
    Nops {
        n: u8,
    },
}

fn alu_of(code: u8) -> AluOp {
    match code % 8 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::And,
        4 => AluOp::Or,
        5 => AluOp::Xor,
        6 => AluOp::Shl,
        _ => AluOp::Shr,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Registers r1..r12 are fair game; r13-r15 reserved for generated
    // control structures.
    let reg = 1u8..12;
    prop_oneof![
        (any::<u8>(), reg.clone(), reg.clone(), reg.clone()).prop_map(|(op, dst, a, b)| Op::Alu {
            op,
            dst,
            a,
            b
        }),
        (any::<u8>(), reg.clone(), reg.clone(), any::<i16>())
            .prop_map(|(op, dst, a, imm)| Op::AluImm { op, dst, a, imm }),
        (reg.clone(), any::<i16>()).prop_map(|(dst, imm)| Op::LoadImm { dst, imm }),
        (reg.clone(), 0u8..16).prop_map(|(dst, slot)| Op::Load { dst, slot }),
        (reg.clone(), 0u8..16).prop_map(|(src, slot)| Op::Store { src, slot }),
        (reg.clone(), 0u8..16, reg.clone()).prop_map(|(dst, slot, operand)| Op::FetchAdd {
            dst,
            slot,
            operand
        }),
        (1u8..8, 1u8..5).prop_map(|(iters, body)| Op::Loop { iters, body }),
        reg.prop_map(|reg| Op::SkipIfEven { reg }),
        (1u8..10).prop_map(|n| Op::Nops { n }),
    ]
}

fn build(ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::new();
    let base = r(31); // address base register, set once
    b.load_imm(base, 0x1000);
    for op in ops {
        match *op {
            Op::Alu { op, dst, a, b: src } => {
                b.op(alu_of(op), r(dst), r(a), r(src));
            }
            Op::AluImm { op, dst, a, imm } => {
                b.op_imm(alu_of(op), r(dst), r(a), i64::from(imm));
            }
            Op::LoadImm { dst, imm } => {
                b.load_imm(r(dst), i64::from(imm));
            }
            Op::Load { dst, slot } => {
                b.load(r(dst), base, i64::from(slot) * 8);
            }
            Op::Store { src, slot } => {
                b.store(r(src), base, i64::from(slot) * 8);
            }
            Op::FetchAdd { dst, slot, operand } => {
                b.op_imm(AluOp::Add, r(13), base, i64::from(slot) * 8);
                b.fetch_add(r(dst), r(13), r(operand));
            }
            Op::Loop { iters, body } => {
                b.load_imm(r(14), i64::from(iters));
                let top = b.bind_new();
                for k in 0..body {
                    b.op_imm(AluOp::Add, r(1 + k % 8), r(1 + (k + 1) % 8), 3);
                }
                b.op_imm(AluOp::Sub, r(14), r(14), 1);
                b.branch(BranchCond::Ne, r(14), Reg::ZERO, top);
            }
            Op::SkipIfEven { reg } => {
                b.op_imm(AluOp::And, r(15), r(reg), 1);
                let skip = b.label();
                b.branch(BranchCond::Eq, r(15), Reg::ZERO, skip);
                b.op_imm(AluOp::Xor, r(reg), r(reg), 0x7f);
                b.op_imm(AluOp::Add, r(reg), r(reg), 11);
                b.bind(skip);
            }
            Op::Nops { n } => {
                b.nops(n as usize);
            }
        }
    }
    b.halt();
    b.build()
}

fn run_core(p: &Program) -> (MemImage, Vec<u64>, u64) {
    let cfg = CpuConfig::splash_default();
    let mut mem = MemorySystem::new(MemConfig::splash_default(1));
    let mut img = MemImage::new();
    let mut core = Core::new(CoreId::new(0), cfg, p);
    let mut obs = NullObserver;
    let mut cycle = 0u64;
    loop {
        let out = mem.tick(cycle);
        for c in out.completions {
            core.push_completion(c.req);
        }
        core.tick(cycle, &mut img, &mut mem, &mut obs);
        if core.is_done() && mem.quiescent() {
            break;
        }
        cycle += 1;
        assert!(cycle < 5_000_000, "core deadlocked");
    }
    let regs = (0..32).map(|i| core.committed_reg(r(i))).collect();
    (img, regs, core.stats().retired)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn core_matches_interpreter(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let p = build(&ops);
        let mut ref_img = MemImage::new();
        let mut interp = Interp::new(&p);
        prop_assert_eq!(interp.run(&mut ref_img, 10_000_000), StopReason::Halted);
        let ref_regs: Vec<u64> = (0..32).map(|i| interp.reg(r(i))).collect();

        let (img, regs, retired) = run_core(&p);
        prop_assert_eq!(&regs, &ref_regs, "register state diverged");
        prop_assert!(img.contents_eq(&ref_img), "memory diverged");
        prop_assert_eq!(retired, interp.retired(), "retired-instruction counts diverged");
    }
}
