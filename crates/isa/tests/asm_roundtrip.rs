//! Property and example tests for the `.asm` frontend: the disassembler's
//! output reassembles to the identical program (print→parse round-trip),
//! and source-level features (prologue replication, `TID`, parameters,
//! `.init`) mean what DESIGN.md §2.7 says they mean.

use proptest::prelude::*;
use rr_isa::asm::{self, AsmOptions};
use rr_isa::{AluOp, AtomicOp, BranchCond, FenceKind, Instr, Program, ProgramBuilder, Reg};

/// A flat, always-valid encoding of one instruction: `kind_op` packs the
/// instruction kind (low byte) and sub-operation (high byte); the final
/// branch targets are resolved after the program length is known.
type RawInstr = (u16, u8, u8, u8, i16, u16);

fn raw_instr() -> impl Strategy<Value = RawInstr> {
    (
        any::<u16>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<i16>(),
        any::<u16>(),
    )
}

fn reg(r: u8) -> Reg {
    Reg::new(r % 32)
}

fn alu(op: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sltu,
        AluOp::Slt,
    ][op as usize % 10]
}

fn build_program(raw: &[RawInstr]) -> Program {
    let len = raw.len() as u32;
    let mut b = ProgramBuilder::new();
    for &(kind_op, r1, r2, r3, imm, tgt) in raw {
        let (kind, op) = ((kind_op & 0xff) as u8, (kind_op >> 8) as u8);
        // Branch targets point anywhere in 0..=len (one past the end is
        // legal: running off the end halts).
        let target = u32::from(tgt) % (len + 1);
        let instr = match kind % 12 {
            0 => Instr::Op {
                op: alu(op),
                dst: reg(r1),
                a: reg(r2),
                b: reg(r3),
            },
            1 => Instr::OpImm {
                op: alu(op),
                dst: reg(r1),
                a: reg(r2),
                imm: i64::from(imm),
            },
            2 => Instr::LoadImm {
                dst: reg(r1),
                imm: i64::from(imm),
            },
            3 => Instr::Load {
                dst: reg(r1),
                base: reg(r2),
                offset: i64::from(imm),
            },
            4 => Instr::Store {
                src: reg(r1),
                base: reg(r2),
                offset: i64::from(imm),
            },
            5 => Instr::Atomic {
                op: [AtomicOp::Cas, AtomicOp::FetchAdd, AtomicOp::Swap][op as usize % 3],
                dst: reg(r1),
                addr: reg(r2),
                // Non-CAS atomics always carry expected == r0, as the
                // builder (and the parser) construct them.
                expected: if op % 3 == 0 { reg(r3) } else { Reg::ZERO },
                operand: reg(r3.wrapping_add(1)),
            },
            6 => Instr::Branch {
                cond: [
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                    BranchCond::Ltu,
                    BranchCond::Geu,
                ][op as usize % 6],
                a: reg(r1),
                b: reg(r2),
                target,
            },
            7 => Instr::Jump { target },
            8 => Instr::Fence(
                [FenceKind::Acquire, FenceKind::Release, FenceKind::Full][op as usize % 3],
            ),
            9 => Instr::Nop,
            10 => Instr::Halt,
            _ => Instr::OpImm {
                op: AluOp::Add,
                dst: reg(r1),
                a: reg(r1),
                imm: 1,
            },
        };
        b.emit(instr);
    }
    b.build()
}

proptest! {
    /// print → parse reproduces the exact instruction sequence, for any
    /// number of cores.
    #[test]
    fn disassemble_then_assemble_is_identity(
        cores in proptest::collection::vec(
            proptest::collection::vec(raw_instr(), 0..40),
            1..4,
        ),
    ) {
        let programs: Vec<Program> = cores.iter().map(|c| build_program(c)).collect();
        let text = asm::disassemble(&programs);
        let out = asm::assemble(&text).expect("disassembler output must reassemble");
        prop_assert_eq!(&out.programs, &programs);

        // And the printer is a fixed point: parse → print is stable.
        let text2 = asm::disassemble(&out.programs);
        prop_assert_eq!(text2, text);
    }
}

#[test]
fn prologue_is_replicated_and_tid_differs_per_core() {
    let out = asm::assemble(
        "
        .cores 3
        .reg r1 = TID
        li r2, NCORES
        ",
    )
    .expect("assembles");
    assert_eq!(out.programs.len(), 3);
    for (core, p) in out.programs.iter().enumerate() {
        assert_eq!(
            p.instrs(),
            &[
                Instr::LoadImm {
                    dst: Reg::new(1),
                    imm: core as i64
                },
                Instr::LoadImm {
                    dst: Reg::new(2),
                    imm: 3
                },
            ]
        );
    }
}

#[test]
fn core_sections_get_their_own_code_and_labels() {
    let out = asm::assemble(
        "
        .core 0
        spin:
        j spin
        .core 1
        li r1, 1
        spin:
        bne r1, r0, spin
        ",
    )
    .expect("assembles");
    assert_eq!(out.programs.len(), 2);
    assert_eq!(out.programs[0].instrs(), &[Instr::Jump { target: 0 }]);
    assert_eq!(
        out.programs[1].instrs()[1],
        Instr::Branch {
            cond: BranchCond::Ne,
            a: Reg::new(1),
            b: Reg::ZERO,
            target: 1
        }
    );
}

#[test]
fn params_consts_and_init_shape_the_memory_image() {
    let out = asm::assemble(
        "
        .cores 2
        .param N = 4
        .const BASE = 0x1000
        .init BASE, N * 2
        .core 0
        .init BASE + 8 * (TID + 1), TID + 10
        nop
        .core 1
        .init BASE + 8 * (TID + 1), TID + 10
        nop
        ",
    )
    .expect("assembles");
    assert_eq!(out.initial_mem.load(0x1000), 8);
    // The per-core `.init` in each section sees its own TID.
    assert_eq!(out.initial_mem.load(0x1000 + 8), 10);
    assert_eq!(out.initial_mem.load(0x1000 + 16), 11);
}

#[test]
fn param_overrides_replace_defaults_and_are_checked() {
    let src = "
        .param N = 4
        li r1, N
    ";
    let out = asm::assemble_with(src, &AsmOptions::new().param("N", 9)).expect("assembles");
    assert_eq!(
        out.programs[0].instrs()[0],
        Instr::LoadImm {
            dst: Reg::new(1),
            imm: 9
        }
    );

    let err = asm::assemble_with(src, &AsmOptions::new().param("M", 1)).unwrap_err();
    assert!(err.msg.contains("undeclared parameter"), "got: {}", err.msg);
}

#[test]
fn offsetless_memory_operand_means_offset_zero() {
    let out = asm::assemble("ld r1, (r2)\nst r3, (r4)").expect("assembles");
    assert_eq!(
        out.programs[0].instrs(),
        &[
            Instr::Load {
                dst: Reg::new(1),
                base: Reg::new(2),
                offset: 0
            },
            Instr::Store {
                src: Reg::new(3),
                base: Reg::new(4),
                offset: 0
            },
        ]
    );
}

#[test]
fn named_workload_runs_on_the_interpreter() {
    // End-to-end: assemble a small program, run it, check the result.
    let out = asm::assemble(
        "
        .name sum
        .const OUT = 0x100
        .const N = 10
        li r1, 0          ; i
        li r2, 0          ; sum
        li r3, N
        loop:
        add r2, r2, r1
        addi r1, r1, 1
        blt r1, r3, loop
        li r4, OUT
        st r2, (r4)
        halt
        ",
    )
    .expect("assembles");
    assert_eq!(out.name.as_deref(), Some("sum"));
    let mut mem = out.initial_mem.clone();
    let mut interp = rr_isa::Interp::new(&out.programs[0]);
    assert_eq!(interp.run(&mut mem, u64::MAX), rr_isa::StopReason::Halted);
    assert_eq!(mem.load(0x100), 45);
}
