//! Golden tests for assembler diagnostics: every error names the 1-based
//! line and column and the offending token, so a workload author can go
//! straight to the problem.

use rr_isa::asm::{self, AsmOptions};

/// Asserts that `src` fails to assemble, blaming exactly `(line, col)` and
/// `token`, with a message containing `msg_part`.
#[track_caller]
fn assert_diag(src: &str, line: u32, col: u32, token: &str, msg_part: &str) {
    let err = asm::assemble(src).expect_err("source should not assemble");
    assert_eq!(
        (err.line, err.col),
        (line, col),
        "wrong position; full error: {err}"
    );
    assert_eq!(err.token, token, "wrong token; full error: {err}");
    assert!(
        err.msg.contains(msg_part),
        "message {:?} does not contain {msg_part:?}",
        err.msg
    );
}

#[test]
fn register_out_of_range() {
    assert_diag("li r32, 1", 1, 4, "r32", "out of range");
}

#[test]
fn unexpected_character() {
    assert_diag("li r1, 1\nld r2, @foo", 2, 8, "@", "unexpected character");
}

#[test]
fn malformed_integer_literal() {
    assert_diag("li r1, 0xzz", 1, 8, "0xzz", "malformed integer literal");
}

#[test]
fn unknown_mnemonic() {
    assert_diag(
        "  frobnicate r1",
        1,
        3,
        "frobnicate",
        "unknown instruction mnemonic",
    );
}

#[test]
fn unknown_directive() {
    assert_diag(".bogus 3", 1, 1, ".bogus", "unknown directive");
}

#[test]
fn missing_comma_names_the_found_token() {
    let err = asm::assemble("add r1 r2, r3").expect_err("missing comma");
    assert_eq!((err.line, err.col), (1, 8));
    assert_eq!(err.token, "r2");
    assert!(err.msg.contains("expected `,`"), "got: {}", err.msg);
    assert!(err.msg.contains("`r2`"), "got: {}", err.msg);
}

#[test]
fn register_where_immediate_expected() {
    assert_diag("li r1, r2", 1, 8, "r2", "expected an immediate expression");
}

#[test]
fn trailing_garbage_after_instruction() {
    assert_diag("nop nop", 1, 5, "nop", "expected end of line");
}

#[test]
fn unknown_label_in_branch() {
    assert_diag(
        "beq r1, r2, missing",
        1,
        13,
        "missing",
        "unknown label `missing`",
    );
}

#[test]
fn duplicate_label_in_one_core() {
    assert_diag("x:\nnop\nx:\nnop", 3, 1, "x", "defined more than once");
}

#[test]
fn same_label_in_different_cores_is_fine() {
    asm::assemble(".core 0\nx:\nj x\n.core 1\nx:\nj x").expect("per-core label namespaces");
}

#[test]
fn undefined_name_in_expression() {
    assert_diag("li r1, UNDEFINED + 2", 1, 8, "UNDEFINED", "undefined name");
}

#[test]
fn reserved_builtin_cannot_be_redefined() {
    assert_diag(".const TID = 3", 1, 8, "TID", "reserved builtin");
}

#[test]
fn duplicate_definition() {
    assert_diag(
        ".param N = 1\n.const N = 2",
        2,
        8,
        "N",
        "defined more than once",
    );
}

#[test]
fn const_requires_a_value() {
    let err = asm::assemble(".const N").expect_err("const needs value");
    assert_eq!(err.line, 1);
    assert!(err.msg.contains("needs `= <expr>`"), "got: {}", err.msg);
}

#[test]
fn param_without_default_or_override() {
    let err = asm::assemble(".param N\nli r1, N").expect_err("param unset");
    assert_eq!((err.line, err.col, err.token.as_str()), (1, 8, "N"));
    assert!(err.msg.contains("no default"), "got: {}", err.msg);

    // Supplying the override fixes it.
    asm::assemble_with(".param N\nli r1, N", &asm::AsmOptions::new().param("N", 5))
        .expect("override supplies the value");
}

#[test]
fn override_of_const_is_rejected() {
    let err = asm::assemble_with(".const N = 1", &AsmOptions::new().param("N", 2))
        .expect_err("consts are not overridable");
    assert!(
        err.msg.contains("not an overridable parameter"),
        "got: {}",
        err.msg
    );
}

#[test]
fn cores_must_cover_core_sections() {
    let err = asm::assemble(".cores 2\n.core 5\nnop").expect_err("section out of range");
    assert!(
        err.msg.contains("`.core 5` section exceeds `.cores 2`"),
        "got: {}",
        err.msg
    );
}

#[test]
fn core_index_must_be_a_literal() {
    let err = asm::assemble(".param C = 1\n.core C\nnop").expect_err("non-literal core index");
    assert_eq!(err.line, 2);
    assert!(err.msg.contains("literal"), "got: {}", err.msg);
}

#[test]
fn misaligned_init_address() {
    let err = asm::assemble(".init 0x104 + 3, 1").expect_err("misaligned init");
    assert_eq!(err.line, 1);
    assert!(err.msg.contains("not 8-byte aligned"), "got: {}", err.msg);
}

#[test]
fn display_formats_position_and_message() {
    let err = asm::assemble("li r32, 1").unwrap_err();
    let shown = err.to_string();
    assert!(
        shown.contains("line 1, column 4"),
        "display should carry the position: {shown}"
    );
    assert!(
        shown.contains("r32"),
        "display should name the token: {shown}"
    );
}
