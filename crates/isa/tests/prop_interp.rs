//! Property tests for the ISA layer: the interpreter is deterministic,
//! builder-produced control flow always resolves, ALU semantics match a
//! reference implementation, and instruction display is total.

use proptest::prelude::*;
use rr_isa::{AluOp, BranchCond, Instr, MemImage, ProgramBuilder, Reg};

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn reference_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b % 64),
        AluOp::Shr => a >> (b % 64),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
    }
}

proptest! {
    #[test]
    fn alu_matches_reference(op in alu_strategy(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(op.apply(a, b), reference_alu(op, a, b));
    }

    #[test]
    fn branch_conditions_are_consistent(a in any::<u64>(), b in any::<u64>()) {
        // Eq/Ne partition; Lt/Ge partition; Ltu/Geu partition.
        prop_assert_ne!(BranchCond::Eq.eval(a, b), BranchCond::Ne.eval(a, b));
        prop_assert_ne!(BranchCond::Lt.eval(a, b), BranchCond::Ge.eval(a, b));
        prop_assert_ne!(BranchCond::Ltu.eval(a, b), BranchCond::Geu.eval(a, b));
    }

    #[test]
    fn interpreter_is_deterministic(
        imms in proptest::collection::vec(any::<i16>(), 1..40),
        slots in proptest::collection::vec(0u8..16, 1..40),
    ) {
        let mut b = ProgramBuilder::new();
        let (base, v) = (Reg::new(1), Reg::new(2));
        b.load_imm(base, 0x100);
        for (imm, slot) in imms.iter().zip(&slots) {
            b.load_imm(v, i64::from(*imm));
            b.store(v, base, i64::from(*slot) * 8);
            b.load(v, base, i64::from(*slot) * 8);
        }
        b.halt();
        let p = b.build();
        let run = || {
            let mut mem = MemImage::new();
            let mut i = rr_isa::Interp::new(&p);
            i.run(&mut mem, 1_000_000);
            (mem.digest(), (0..32).map(|r| i.reg(Reg::new(r))).collect::<Vec<_>>())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn every_instruction_displays(op in alu_strategy(), imm in any::<i16>()) {
        let instrs = [
            Instr::Op { op, dst: Reg::new(1), a: Reg::new(2), b: Reg::new(3) },
            Instr::OpImm { op, dst: Reg::new(1), a: Reg::new(2), imm: i64::from(imm) },
            Instr::LoadImm { dst: Reg::new(1), imm: i64::from(imm) },
            Instr::Load { dst: Reg::new(1), base: Reg::new(2), offset: i64::from(imm) },
            Instr::Store { src: Reg::new(1), base: Reg::new(2), offset: i64::from(imm) },
        ];
        for i in &instrs {
            prop_assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn forward_and_backward_labels_always_resolve(
        jumps in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        // A chain of forward jumps over skippable blocks plus backward
        // no-op loops; must always build and terminate.
        let mut b = ProgramBuilder::new();
        for &fwd in &jumps {
            if fwd {
                let skip = b.label();
                b.jump(skip);
                b.nops(3);
                b.bind(skip);
            } else {
                let back = b.bind_new();
                b.nops(1);
                // A non-taken conditional backward branch (r0 == r0 is
                // true, so use Ne which is false).
                b.branch(BranchCond::Ne, Reg::ZERO, Reg::ZERO, back);
            }
        }
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut i = rr_isa::Interp::new(&p);
        prop_assert_eq!(i.run(&mut mem, 100_000), rr_isa::StopReason::Halted);
    }
}
