//! A concurrently shareable memory image for multithreaded replay.
//!
//! [`SharedMem`] holds the same sparse word-granular address space as
//! [`MemImage`], but safe to access from many replay workers at once: the
//! page table is sharded behind mutexes (taken only on a worker's *first*
//! touch of a page), and the words themselves are atomics, so steady-state
//! loads/stores/RMWs are lock-free. Workers access memory through a
//! [`SharedMemHandle`] (one per worker), which caches page pointers so
//! repeat touches of a page never revisit the shard locks.
//!
//! Word atomicity is exactly the write-atomicity property RelaxReplay
//! relies on (paper §3.2, Observation 1). Cross-interval ordering is *not*
//! this type's job: the replay engine only runs two intervals concurrently
//! when the recorded partial order says they do not communicate, and its
//! ready-queue lock establishes happens-before between a completed
//! interval's stores and its dependents' loads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::mem_image::PAGE_WORDS;
use crate::{MemImage, Memory, WORD_BYTES};

/// Page-table shards. Plenty relative to any realistic worker count, so
/// first-touch lock contention is negligible.
const SHARDS: usize = 128;

type Page = Arc<[AtomicU64; PAGE_WORDS]>;

fn new_page() -> Page {
    Arc::new(std::array::from_fn(|_| AtomicU64::new(0)))
}

fn split(addr: u64) -> (u64, usize) {
    assert!(
        addr.is_multiple_of(WORD_BYTES),
        "unaligned memory access at {addr:#x}"
    );
    let word = addr / WORD_BYTES;
    (
        word / PAGE_WORDS as u64,
        (word % PAGE_WORDS as u64) as usize,
    )
}

/// A sparse memory image that many threads can read and write at once.
///
/// Construct one from an initial [`MemImage`], hand a [`SharedMemHandle`]
/// to each worker ([`SharedMem::handle`]), and collect the final state
/// back into a [`MemImage`] with [`SharedMem::to_image`].
#[derive(Debug, Default)]
pub struct SharedMem {
    shards: Vec<Mutex<HashMap<u64, Page>>>,
}

impl SharedMem {
    /// Creates an empty (all-zero) shared image.
    #[must_use]
    pub fn new() -> Self {
        SharedMem {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Creates a shared image holding the same contents as `img`.
    #[must_use]
    pub fn from_image(img: &MemImage) -> Self {
        let mem = Self::new();
        let mut h = mem.handle();
        for (addr, value) in img.iter() {
            if value != 0 {
                h.store(addr, value);
            }
        }
        drop(h);
        mem
    }

    /// Snapshots the current contents into a [`MemImage`].
    ///
    /// Callers are responsible for quiescence: the snapshot locks one shard
    /// at a time, so words written concurrently with the snapshot may or
    /// may not be included.
    #[must_use]
    pub fn to_image(&self) -> MemImage {
        let mut img = MemImage::new();
        for shard in &self.shards {
            let pages = shard.lock().expect("shared-memory shard poisoned");
            for (&page_no, page) in pages.iter() {
                let base = page_no * PAGE_WORDS as u64 * WORD_BYTES;
                for (i, word) in page.iter().enumerate() {
                    let v = word.load(Ordering::Acquire);
                    if v != 0 {
                        img.store(base + i as u64 * WORD_BYTES, v);
                    }
                }
            }
        }
        img
    }

    /// A worker-local access handle with its own page-pointer cache.
    #[must_use]
    pub fn handle(&self) -> SharedMemHandle<'_> {
        SharedMemHandle {
            mem: self,
            cache: HashMap::new(),
        }
    }

    fn page(&self, page_no: u64) -> Page {
        let shard = &self.shards[(page_no % SHARDS as u64) as usize];
        let mut pages = shard.lock().expect("shared-memory shard poisoned");
        pages.entry(page_no).or_insert_with(new_page).clone()
    }
}

/// One worker's view of a [`SharedMem`]; implements [`Memory`] so an
/// [`Interp`](crate::Interp) can execute directly against shared memory.
#[derive(Debug)]
pub struct SharedMemHandle<'m> {
    mem: &'m SharedMem,
    cache: HashMap<u64, Page>,
}

impl SharedMemHandle<'_> {
    fn page(&mut self, page_no: u64) -> &Page {
        self.cache
            .entry(page_no)
            .or_insert_with(|| self.mem.page(page_no))
    }
}

impl Memory for SharedMemHandle<'_> {
    fn load(&mut self, addr: u64) -> u64 {
        let (page_no, idx) = split(addr);
        self.page(page_no)[idx].load(Ordering::Acquire)
    }

    fn store(&mut self, addr: u64, value: u64) {
        let (page_no, idx) = split(addr);
        self.page(page_no)[idx].store(value, Ordering::Release);
    }

    fn rmw(&mut self, addr: u64, mut f: impl FnMut(u64) -> Option<u64>) -> u64 {
        let (page_no, idx) = split(addr);
        let word = &self.page(page_no)[idx];
        let mut old = word.load(Ordering::Acquire);
        loop {
            match f(old) {
                None => return old,
                Some(new) => {
                    match word.compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
                    {
                        Ok(_) => return old,
                        Err(actual) => old = actual,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trip() {
        let mut img = MemImage::new();
        img.store(0x100, 7);
        img.store(1 << 40, u64::MAX);
        let shared = SharedMem::from_image(&img);
        let mut h = shared.handle();
        assert_eq!(h.load(0x100), 7);
        assert_eq!(h.load(1 << 40), u64::MAX);
        assert_eq!(h.load(0x108), 0, "unwritten memory reads zero");
        h.store(0x108, 9);
        drop(h);
        let back = shared.to_image();
        img.store(0x108, 9);
        assert!(back.contents_eq(&img));
    }

    #[test]
    fn rmw_matches_mem_image_semantics() {
        let shared = SharedMem::new();
        let mut h = shared.handle();
        h.store(16, 5);
        let old = h.rmw(16, |v| (v == 5).then_some(9));
        assert_eq!(old, 5);
        assert_eq!(h.load(16), 9);
        let old = h.rmw(16, |v| (v == 5).then_some(1));
        assert_eq!(old, 9);
        assert_eq!(h.load(16), 9, "failed CAS must not write");
    }

    #[test]
    fn concurrent_fetch_adds_never_lose_updates() {
        let shared = SharedMem::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut h = shared.handle();
                    for _ in 0..1000 {
                        h.rmw(0x40, |v| Some(v.wrapping_add(1)));
                    }
                });
            }
        });
        assert_eq!(shared.handle().load(0x40), 4000);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let shared = SharedMem::new();
        let _ = shared.handle().load(3);
    }
}
