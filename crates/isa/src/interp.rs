use crate::{AtomicOp, Instr, Memory, Program, Reg, NUM_REGS};

/// What a single interpreted instruction did.
///
/// Returned by [`Interp::step`]; the replayer and tests use these events to
/// observe load values and store effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// A non-memory, non-control instruction executed.
    Alu,
    /// A load read `value` from `addr`.
    Load {
        /// Byte address accessed.
        addr: u64,
        /// Value read.
        value: u64,
    },
    /// A store wrote `value` to `addr`.
    Store {
        /// Byte address accessed.
        addr: u64,
        /// Value written.
        value: u64,
    },
    /// An atomic RMW at `addr` read `loaded` and, if `stored` is `Some`,
    /// wrote that value (a failed CAS stores nothing).
    Atomic {
        /// Byte address accessed.
        addr: u64,
        /// Old value read from memory.
        loaded: u64,
        /// New value written, if the RMW succeeded.
        stored: Option<u64>,
    },
    /// A branch or jump executed; `taken` reports the outcome.
    Branch {
        /// Whether control transferred to the target.
        taken: bool,
    },
    /// A fence executed.
    Fence,
    /// The thread was already halted (or ran past the end of the program).
    Halted,
}

/// Why [`Interp::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The thread executed a `halt` or ran past the end of its program.
    Halted,
    /// The instruction budget was exhausted (the replayer's
    /// instruction-count interrupt, paper §3.5).
    InstrLimit,
}

/// A sequential interpreter for one thread's [`Program`].
///
/// During **recording** this is not used for execution (the cycle-level core
/// model in `rr-cpu` is); it serves as the functional semantics referenced by
/// tests. During **replay** it stands in for native hardware execution: the
/// replay driver runs `InorderBlock`s with an instruction budget
/// ([`Interp::run`]), injects logged values for reordered loads
/// ([`Interp::set_reg`] + [`Interp::skip`]), and skips dummy entries
/// ([`Interp::skip`]).
///
/// ```
/// use rr_isa::{Interp, MemImage, ProgramBuilder, Reg, StopReason};
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::new(1), 3);
/// b.halt();
/// let p = b.build();
/// let mut mem = MemImage::new();
/// let mut i = Interp::new(&p);
/// assert_eq!(i.run(&mut mem, 10), StopReason::Halted);
/// assert_eq!(i.reg(Reg::new(1)), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    pc: usize,
    halted: bool,
    retired: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter at `pc = 0` with all registers zero.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter (an instruction index).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the thread has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far (skipped instructions count,
    /// matching the replay driver's "advance the program counter" step).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (replay value injection for `ReorderedLoad`
    /// entries, paper §3.5).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Returns the instruction the PC currently points at, if any.
    #[must_use]
    pub fn current_instr(&self) -> Option<&Instr> {
        self.program.get(self.pc)
    }

    /// Advances the PC past the current instruction *without executing it*,
    /// counting it as retired. Used by the replay driver for reordered loads
    /// (after injecting the logged value) and for dummy store entries.
    pub fn skip(&mut self) {
        if !self.halted {
            self.pc += 1;
            self.retired += 1;
            if self.program.get(self.pc).is_none() {
                // Past the end: halt on the next step.
            }
        }
    }

    /// Executes one instruction against `mem` — any [`Memory`]
    /// implementation: the plain [`MemImage`](crate::MemImage) or a
    /// concurrently shared [`SharedMemHandle`](crate::SharedMemHandle).
    pub fn step<M: Memory>(&mut self, mem: &mut M) -> StepEvent {
        if self.halted {
            return StepEvent::Halted;
        }
        let Some(&instr) = self.program.get(self.pc) else {
            self.halted = true;
            return StepEvent::Halted;
        };
        self.pc += 1;
        self.retired += 1;
        match instr {
            Instr::Op { op, dst, a, b } => {
                self.regs[dst.index()] = op.apply(self.regs[a.index()], self.regs[b.index()]);
                StepEvent::Alu
            }
            Instr::OpImm { op, dst, a, imm } => {
                self.regs[dst.index()] = op.apply(self.regs[a.index()], imm as u64);
                StepEvent::Alu
            }
            Instr::LoadImm { dst, imm } => {
                self.regs[dst.index()] = imm as u64;
                StepEvent::Alu
            }
            Instr::Load { dst, base, offset } => {
                let addr = self.regs[base.index()].wrapping_add(offset as u64);
                let value = mem.load(addr);
                self.regs[dst.index()] = value;
                StepEvent::Load { addr, value }
            }
            Instr::Store { src, base, offset } => {
                let addr = self.regs[base.index()].wrapping_add(offset as u64);
                let value = self.regs[src.index()];
                mem.store(addr, value);
                StepEvent::Store { addr, value }
            }
            Instr::Atomic {
                op,
                dst,
                addr,
                expected,
                operand,
            } => {
                let addr = self.regs[addr.index()];
                let operand = self.regs[operand.index()];
                let expected = self.regs[expected.index()];
                let mut stored = None;
                let loaded = mem.rmw(addr, |old| {
                    stored = match op {
                        AtomicOp::Cas => (old == expected).then_some(operand),
                        AtomicOp::FetchAdd => Some(old.wrapping_add(operand)),
                        AtomicOp::Swap => Some(operand),
                    };
                    stored
                });
                self.regs[dst.index()] = loaded;
                StepEvent::Atomic {
                    addr,
                    loaded,
                    stored,
                }
            }
            Instr::Branch { cond, a, b, target } => {
                let taken = cond.eval(self.regs[a.index()], self.regs[b.index()]);
                if taken {
                    self.pc = target as usize;
                }
                StepEvent::Branch { taken }
            }
            Instr::Jump { target } => {
                self.pc = target as usize;
                StepEvent::Branch { taken: true }
            }
            Instr::Fence(_) => StepEvent::Fence,
            Instr::Nop => StepEvent::Alu,
            Instr::Halt => {
                // The halt retires like any other instruction (the core
                // model and the recorder count it too, so replay block
                // sizes line up), and the thread stops.
                self.halted = true;
                StepEvent::Halted
            }
        }
    }

    /// Runs up to `max_instrs` instructions, stopping early on halt.
    pub fn run<M: Memory>(&mut self, mem: &mut M, max_instrs: u64) -> StopReason {
        for _ in 0..max_instrs {
            if let StepEvent::Halted = self.step(mem) {
                return StopReason::Halted;
            }
        }
        if self.halted {
            StopReason::Halted
        } else {
            StopReason::InstrLimit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchCond, MemImage, ProgramBuilder};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn loop_sums_correctly() {
        let mut b = ProgramBuilder::new();
        let (i, sum, limit) = (r(1), r(2), r(3));
        b.load_imm(i, 0).load_imm(sum, 0).load_imm(limit, 100);
        let top = b.bind_new();
        b.add(sum, sum, i).add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, limit, top);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        assert_eq!(interp.run(&mut mem, 1_000_000), StopReason::Halted);
        assert_eq!(interp.reg(sum), (0..100).sum::<u64>());
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 0x200);
        b.load_imm(r(2), 99);
        b.store(r(2), r(1), 8);
        b.load(r(3), r(1), 8);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        interp.run(&mut mem, 100);
        assert_eq!(mem.load(0x208), 99);
        assert_eq!(interp.reg(r(3)), 99);
    }

    #[test]
    fn cas_success_and_failure_events() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 0x40); // addr
        b.load_imm(r(2), 0); // expected
        b.load_imm(r(3), 7); // desired
        b.cas(r(4), r(1), r(2), r(3));
        b.cas(r(5), r(1), r(2), r(3)); // now fails: mem == 7 != 0
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        for _ in 0..3 {
            interp.step(&mut mem);
        }
        assert_eq!(
            interp.step(&mut mem),
            StepEvent::Atomic {
                addr: 0x40,
                loaded: 0,
                stored: Some(7)
            }
        );
        assert_eq!(
            interp.step(&mut mem),
            StepEvent::Atomic {
                addr: 0x40,
                loaded: 7,
                stored: None
            }
        );
        assert_eq!(interp.reg(r(4)), 0);
        assert_eq!(interp.reg(r(5)), 7);
    }

    #[test]
    fn fetch_add_accumulates() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 0x80);
        b.load_imm(r(2), 5);
        b.fetch_add(r(3), r(1), r(2));
        b.fetch_add(r(4), r(1), r(2));
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        interp.run(&mut mem, 100);
        assert_eq!(interp.reg(r(3)), 0);
        assert_eq!(interp.reg(r(4)), 5);
        assert_eq!(mem.load(0x80), 10);
    }

    #[test]
    fn instr_limit_interrupt() {
        let mut b = ProgramBuilder::new();
        b.nops(10).halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        assert_eq!(interp.run(&mut mem, 4), StopReason::InstrLimit);
        assert_eq!(interp.retired(), 4);
        assert_eq!(interp.run(&mut mem, 100), StopReason::Halted);
        // The halt itself retires (block-size accounting during replay
        // counts it too): 10 nops + 1 halt.
        assert_eq!(interp.retired(), 11);
    }

    #[test]
    fn skip_advances_without_executing() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 42);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        interp.skip(); // skip the load_imm
        assert_eq!(interp.reg(r(1)), 0);
        assert_eq!(interp.retired(), 1);
        assert_eq!(interp.run(&mut mem, 10), StopReason::Halted);
        assert_eq!(interp.reg(r(1)), 0, "skipped instruction must not execute");
    }

    #[test]
    fn running_past_end_halts() {
        let mut b = ProgramBuilder::new();
        b.nops(1);
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        assert_eq!(interp.run(&mut mem, 10), StopReason::Halted);
        assert!(interp.is_halted());
    }

    #[test]
    fn value_injection_feeds_consumers() {
        // Simulates replay of a reordered load: skip the load, inject the
        // logged value, and check a consumer sees it.
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 0x100);
        b.load(r(2), r(1), 0);
        b.add_imm(r(3), r(2), 1);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        mem.store(0x100, 500); // memory now holds a *different* value
        let mut interp = Interp::new(&p);
        interp.step(&mut mem); // load_imm
        interp.set_reg(r(2), 41); // injected logged value
        interp.skip(); // skip the load itself
        interp.run(&mut mem, 10);
        assert_eq!(interp.reg(r(3)), 42);
    }
}
