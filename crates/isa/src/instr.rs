use core::fmt;

use crate::Reg;

/// Binary ALU operations.
///
/// All arithmetic is on 64-bit values with wrapping semantics; comparisons
/// produce 0 or 1. Shift amounts are taken modulo 64.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount mod 64).
    Shl,
    /// Logical shift right (amount mod 64).
    Shr,
    /// Set if less-than, unsigned: `(a < b) as u64`.
    Sltu,
    /// Set if less-than, signed: `((a as i64) < (b as i64)) as u64`.
    Slt,
}

impl AluOp {
    /// Applies the operation to two operand values.
    ///
    /// ```
    /// use rr_isa::AluOp;
    /// assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0); // wrapping
    /// assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1); // -1 < 0 signed
    /// ```
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }
}

/// Conditions for conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less-than, signed.
    Lt,
    /// Branch if greater-or-equal, signed.
    Ge,
    /// Branch if less-than, unsigned.
    Ltu,
    /// Branch if greater-or-equal, unsigned.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two operand values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Memory fence kinds, mirroring release-consistency primitives.
///
/// Under the RC model of the simulated core (paper §5.1), plain loads and
/// stores may reorder freely; fences restore ordering where workloads need it
/// (lock acquire/release, barriers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// Later accesses may not start until the fence retires (read barrier).
    Acquire,
    /// The fence does not retire until all earlier accesses performed
    /// (write barrier: drains the write buffer).
    Release,
    /// Both acquire and release.
    Full,
}

/// Atomic read-modify-write operations.
///
/// Atomics have acquire+release semantics in the simulated core and perform
/// as a single coherence transaction (they are both a read and a write for
/// the recorder's signatures; see DESIGN.md §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Compare-and-swap: if `mem[addr] == expected`, write `desired`.
    /// The destination register receives the *old* memory value.
    Cas,
    /// Fetch-and-add: `mem[addr] += operand`. The destination register
    /// receives the *old* memory value.
    FetchAdd,
    /// Atomic exchange: `mem[addr] = operand`. The destination register
    /// receives the *old* memory value.
    Swap,
}

/// A single instruction of the mini ISA.
///
/// Branch/jump targets are resolved instruction indices (produced by
/// [`ProgramBuilder`](crate::ProgramBuilder) from labels). All memory
/// addresses are computed as `regs[base] + offset` and must be 8-byte
/// aligned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Three-register ALU operation: `dst = op(a, b)`.
    Op {
        /// The operation to apply.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// Register-immediate ALU operation: `dst = op(a, imm)`.
    OpImm {
        /// The operation to apply.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand (sign-extended to 64 bits).
        imm: i64,
    },
    /// Load immediate: `dst = imm`.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Word load: `dst = mem[regs[base] + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Word store: `mem[regs[base] + offset] = regs[src]`.
    Store {
        /// Source (data) register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Atomic read-modify-write on `regs[addr]`.
    Atomic {
        /// Which RMW operation to perform.
        op: AtomicOp,
        /// Destination register (receives the old memory value).
        dst: Reg,
        /// Address register (no offset; atomics address directly).
        addr: Reg,
        /// For `Cas`: the expected value register. Unused otherwise.
        expected: Reg,
        /// For `Cas`: the desired value; for `FetchAdd`/`Swap`: the operand.
        operand: Reg,
    },
    /// Conditional branch to `target` if `cond(a, b)`.
    Branch {
        /// Branch condition.
        cond: BranchCond,
        /// First comparison register.
        a: Reg,
        /// Second comparison register.
        b: Reg,
        /// Resolved target instruction index.
        target: u32,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// Resolved target instruction index.
        target: u32,
    },
    /// Memory fence.
    Fence(FenceKind),
    /// No operation.
    Nop,
    /// Stops the thread.
    Halt,
}

impl Instr {
    /// Returns `true` for instructions that access memory (loads, stores and
    /// atomics) — the instructions tracked by the recorder's TRAQ.
    #[must_use]
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Atomic { .. }
        )
    }

    /// Returns `true` for control-flow instructions (branches and jumps).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Op { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Instr::OpImm { op, dst, a, imm } => write!(f, "{op:?}i {dst}, {a}, {imm}"),
            Instr::LoadImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Instr::Load { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Instr::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instr::Atomic {
                op,
                dst,
                addr,
                expected,
                operand,
            } => match op {
                AtomicOp::Cas => write!(f, "cas {dst}, ({addr}), {expected} -> {operand}"),
                AtomicOp::FetchAdd => write!(f, "fadd {dst}, ({addr}), {operand}"),
                AtomicOp::Swap => write!(f, "swap {dst}, ({addr}), {operand}"),
            },
            Instr::Branch { cond, a, b, target } => write!(f, "b{cond:?} {a}, {b}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Fence(kind) => write!(f, "fence.{kind:?}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(1 << 63, 2), 0);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // amount mod 64
        assert_eq!(AluOp::Shr.apply(8, 2), 2);
        assert_eq!(AluOp::Sltu.apply(1, 2), 1);
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0
        assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX)); // 0 >= -1
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn memory_access_classification() {
        let ld = Instr::Load {
            dst: Reg::ZERO,
            base: Reg::ZERO,
            offset: 0,
        };
        assert!(ld.is_memory_access());
        assert!(!Instr::Nop.is_memory_access());
        assert!(!Instr::Fence(FenceKind::Full).is_memory_access());
        assert!(Instr::Jump { target: 0 }.is_control());
    }

    #[test]
    fn display_is_nonempty() {
        let instrs = [
            Instr::Nop,
            Instr::Halt,
            Instr::Fence(FenceKind::Acquire),
            Instr::Jump { target: 3 },
        ];
        for i in &instrs {
            assert!(!i.to_string().is_empty());
        }
    }
}
