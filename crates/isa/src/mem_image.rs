use std::collections::HashMap;

use crate::WORD_BYTES;

/// Words per page of the sparse memory image (4 KiB pages). Shared with
/// the concurrently shareable image in `shared_mem`, so the two address
/// spaces tile identically.
pub(crate) const PAGE_WORDS: usize = 512;

/// A sparse, word-granular memory image.
///
/// This is the *functional* shared memory of the simulated machine: the
/// timing/coherence model in `rr-mem` decides *when* an access performs,
/// while the values live here. Write atomicity (the property RelaxReplay
/// relies on, paper §3.2 Observation 1) is modeled by applying each store to
/// this single image exactly at its perform time.
///
/// Addresses are byte addresses; all accesses must be aligned to
/// [`WORD_BYTES`]. Unwritten memory reads as zero.
///
/// ```
/// use rr_isa::MemImage;
/// let mut mem = MemImage::new();
/// assert_eq!(mem.load(0x1000), 0);
/// mem.store(0x1000, 0xdead_beef);
/// assert_eq!(mem.load(0x1000), 0xdead_beef);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl MemImage {
    /// Creates an empty (all-zero) memory image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn split(addr: u64) -> (u64, usize) {
        assert!(
            addr.is_multiple_of(WORD_BYTES),
            "unaligned memory access at {addr:#x}"
        );
        let word = addr / WORD_BYTES;
        (
            word / PAGE_WORDS as u64,
            (word % PAGE_WORDS as u64) as usize,
        )
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to [`WORD_BYTES`].
    #[must_use]
    pub fn load(&self, addr: u64) -> u64 {
        let (page, idx) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[idx])
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to [`WORD_BYTES`].
    pub fn store(&mut self, addr: u64, value: u64) {
        let (page, idx) = Self::split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[idx] = value;
    }

    /// Atomically performs a read-modify-write, returning the old value.
    ///
    /// `f` maps the old value to `Some(new)` (store `new`) or `None`
    /// (leave memory unchanged, as in a failed compare-and-swap).
    pub fn rmw(&mut self, addr: u64, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        let old = self.load(addr);
        if let Some(new) = f(old) {
            self.store(addr, new);
        }
        old
    }

    /// Iterates over all words that were ever written, as `(addr, value)`.
    ///
    /// Order is unspecified; use [`MemImage::digest`] for a canonical
    /// summary.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|(page, words)| {
            let base = page * PAGE_WORDS as u64 * WORD_BYTES;
            words
                .iter()
                .enumerate()
                .map(move |(i, &v)| (base + i as u64 * WORD_BYTES, v))
        })
    }

    /// Returns a canonical digest of the memory contents, suitable for
    /// equality comparison between a recorded and a replayed execution.
    ///
    /// Zero-valued words are excluded, so images that differ only in which
    /// pages were touched compare equal.
    #[must_use]
    pub fn digest(&self) -> u64 {
        // FNV-1a over (addr, value) pairs in address order.
        let mut pairs: Vec<(u64, u64)> = self.iter().filter(|&(_, v)| v != 0).collect();
        pairs.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (a, v) in pairs {
            for b in a.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Returns `true` when both images hold identical contents
    /// (ignoring zero-valued words).
    #[must_use]
    pub fn contents_eq(&self, other: &MemImage) -> bool {
        let collect = |m: &MemImage| {
            let mut v: Vec<(u64, u64)> = m.iter().filter(|&(_, v)| v != 0).collect();
            v.sort_unstable();
            v
        };
        collect(self) == collect(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let mem = MemImage::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(8 * PAGE_WORDS as u64 * 17), 0);
    }

    #[test]
    fn store_load_round_trip() {
        let mut mem = MemImage::new();
        mem.store(0, 1);
        mem.store(8, 2);
        mem.store(1 << 40, 3);
        assert_eq!(mem.load(0), 1);
        assert_eq!(mem.load(8), 2);
        assert_eq!(mem.load(1 << 40), 3);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let _ = MemImage::new().load(3);
    }

    #[test]
    fn rmw_cas_success_and_failure() {
        let mut mem = MemImage::new();
        mem.store(16, 5);
        let old = mem.rmw(16, |v| (v == 5).then_some(9));
        assert_eq!(old, 5);
        assert_eq!(mem.load(16), 9);
        let old = mem.rmw(16, |v| (v == 5).then_some(1));
        assert_eq!(old, 9);
        assert_eq!(mem.load(16), 9, "failed CAS must not write");
    }

    #[test]
    fn digest_ignores_zero_words_and_page_touch() {
        let mut a = MemImage::new();
        let mut b = MemImage::new();
        a.store(64, 7);
        b.store(64, 7);
        b.store(1 << 30, 0); // touches a page but stores zero
        assert_eq!(a.digest(), b.digest());
        assert!(a.contents_eq(&b));
        b.store(72, 1);
        assert_ne!(a.digest(), b.digest());
        assert!(!a.contents_eq(&b));
    }

    #[test]
    fn iter_reports_written_words() {
        let mut mem = MemImage::new();
        mem.store(8, 42);
        let found: Vec<_> = mem.iter().filter(|&(_, v)| v != 0).collect();
        assert_eq!(found, vec![(8, 42)]);
    }
}
