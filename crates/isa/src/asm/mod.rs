//! Text assembler frontend for the mini ISA.
//!
//! Workloads can be written as `.asm` files instead of Rust code against
//! [`ProgramBuilder`](crate::ProgramBuilder). A source file describes one
//! *multi-core* workload: directives set shared parameters and initial
//! memory, a prologue (everything before the first `.core`) is replicated
//! into every core's program, and `.core n` sections hold per-core code.
//!
//! # Grammar sketch
//!
//! ```text
//! file      := line*
//! line      := directive | label? instr? comment?
//! directive := ".name" IDENT
//!            | ".cores" expr            ; core count (SPMD replication)
//!            | ".core" INT              ; start per-core section
//!            | ".param" IDENT ("=" expr)?   ; overridable constant
//!            | ".const" IDENT "=" expr      ; fixed constant
//!            | ".init" expr "," expr        ; initial memory word
//!            | ".reg" REG "=" expr          ; register-passed parameter (li)
//! label     := IDENT ":"
//! instr     := "add" REG "," REG "," REG      (also sub/mul/and/or/xor/shl/shr/sltu/slt)
//!            | "addi" REG "," REG "," expr    (immediate forms, `i` suffix)
//!            | "li" REG "," expr
//!            | "ld" REG "," expr? "(" REG ")"
//!            | "st" REG "," expr? "(" REG ")"
//!            | "cas" REG "," "(" REG ")" "," REG "," REG
//!            | "fadd" REG "," "(" REG ")" "," REG
//!            | "swap" REG "," "(" REG ")" "," REG
//!            | "beq" REG "," REG "," IDENT    (also bne/blt/bge/bltu/bgeu)
//!            | "j" IDENT
//!            | "fence" | "fence.acq" | "fence.rel" | "fence.full"
//!            | "nop" | "halt"
//! expr      := constant arithmetic over INT, names, `+ - *`, parens
//! ```
//!
//! Expressions may reference `.param`/`.const` names plus the per-core
//! builtins `TID` (this core's index) and `NCORES`. Comments are `;`, `#`
//! or `//` to end of line.
//!
//! ```
//! use rr_isa::asm;
//!
//! let out = asm::assemble(
//!     ".name counter
//!      .cores 2
//!      .const CTR = 0x100
//!      .init CTR, 0
//!      .reg r2 = CTR
//!      .reg r3 = 1
//!      fadd r1, (r2), r3
//!      halt",
//! )
//! .expect("assembles");
//! assert_eq!(out.programs.len(), 2);
//! assert_eq!(out.name.as_deref(), Some("counter"));
//! ```

use core::fmt;

use crate::{MemImage, Program};

mod lexer;
mod parser;
mod printer;

pub use lexer::{lex, Tok, Token};

/// An assembly diagnostic: what went wrong, and exactly where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (0 when the error has no source position,
    /// e.g. a bad parameter override).
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// The offending token's source text.
    pub token: String,
    /// Human-readable description.
    pub msg: String,
}

impl AsmError {
    /// Creates a diagnostic at `line:col` blaming `token`.
    pub fn new(line: u32, col: u32, token: impl Into<String>, msg: impl Into<String>) -> Self {
        AsmError {
            line,
            col,
            token: token.into(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm: {}", self.msg)
        } else {
            write!(
                f,
                "asm: line {}, column {}: {}",
                self.line, self.col, self.msg
            )
        }
    }
}

impl std::error::Error for AsmError {}

/// Caller-side knobs for [`assemble_with`].
#[derive(Clone, Debug, Default)]
pub struct AsmOptions {
    /// Overrides for `.param` values, by name. Later entries win.
    /// Every entry must name a declared `.param`.
    pub params: Vec<(String, i64)>,
}

impl AsmOptions {
    /// Empty options (all parameters take their defaults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter override.
    #[must_use]
    pub fn param(mut self, name: &str, value: i64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }
}

/// The result of assembling a source file: one [`Program`] per core plus
/// the initial shared-memory image from `.init` directives.
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The `.name` directive's value, if present.
    pub name: Option<String>,
    /// One program per core, indexed by core id.
    pub programs: Vec<Program>,
    /// Initial memory from `.init` directives.
    pub initial_mem: MemImage,
}

/// Assembles `src` with default options.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the line, column and offending token on
/// any lexical, syntactic or semantic problem.
pub fn assemble(src: &str) -> Result<Assembled, AsmError> {
    parser::assemble_impl(src, &AsmOptions::default())
}

/// Assembles `src` with parameter overrides.
///
/// # Errors
///
/// As [`assemble`]; additionally rejects overrides that do not name a
/// declared `.param`.
pub fn assemble_with(src: &str, opts: &AsmOptions) -> Result<Assembled, AsmError> {
    parser::assemble_impl(src, opts)
}

/// Renders per-core programs back to parseable assembly text.
///
/// The output round-trips: `assemble(&disassemble(p))` yields programs
/// equal to `p`. Branch targets become synthesized `L<pc>` labels.
#[must_use]
pub fn disassemble(programs: &[Program]) -> String {
    printer::disassemble_impl(programs)
}
