//! Tokenizer for the `.asm` frontend.
//!
//! The lexer is line-oriented: newlines are tokens (statements end at end
//! of line), comments (`;`, `#`, `//`) run to end of line, and every token
//! carries its 1-based line and column for diagnostics.

use super::AsmError;

/// A token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier: mnemonics (`ld`, `fence.rel`), label names, constant
    /// names, and directives (leading `.`, e.g. `.core`).
    Ident(String),
    /// A register, `r0`..`r31`.
    Reg(u8),
    /// An integer literal (decimal or `0x` hex).
    Int(i64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of a source line.
    Newline,
    /// End of input.
    Eof,
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// The exact source text of the token (for diagnostics).
    pub text: String,
}

impl Token {
    /// A short human label for error messages ("end of line", "`,`", ...).
    #[must_use]
    pub fn describe(&self) -> String {
        match self.kind {
            Tok::Newline => "end of line".to_string(),
            Tok::Eof => "end of input".to_string(),
            _ => format!("`{}`", self.text),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes `src`, appending a trailing [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`AsmError`] on an unknown character, a malformed integer
/// literal, or a register index outside `r0..r31`.
pub fn lex(src: &str) -> Result<Vec<Token>, AsmError> {
    let mut out = Vec::new();
    for (line_idx, line) in src.lines().enumerate() {
        let line_no = line_idx as u32 + 1;
        let mut chars = line.char_indices().peekable();
        while let Some(&(byte, c)) = chars.peek() {
            let col = line[..byte].chars().count() as u32 + 1;
            // Comments run to end of line.
            if c == ';' || c == '#' || (c == '/' && line[byte..].starts_with("//")) {
                break;
            }
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            let mut push = |kind: Tok, text: String| {
                out.push(Token {
                    kind,
                    line: line_no,
                    col,
                    text,
                });
            };
            match c {
                ',' | '(' | ')' | ':' | '=' | '+' | '-' | '*' => {
                    chars.next();
                    let kind = match c {
                        ',' => Tok::Comma,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        ':' => Tok::Colon,
                        '=' => Tok::Eq,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        _ => Tok::Star,
                    };
                    push(kind, c.to_string());
                }
                '0'..='9' => {
                    let start = byte;
                    let mut end = byte;
                    while let Some(&(b, ch)) = chars.peek() {
                        if ch.is_ascii_alphanumeric() || ch == '_' {
                            end = b + ch.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[start..end];
                    let digits = text.replace('_', "");
                    let parsed = if let Some(hex) = digits
                        .strip_prefix("0x")
                        .or_else(|| digits.strip_prefix("0X"))
                    {
                        u64::from_str_radix(hex, 16).map(|v| v as i64)
                    } else {
                        digits.parse::<i64>()
                    };
                    match parsed {
                        Ok(v) => push(Tok::Int(v), text.to_string()),
                        Err(_) => {
                            return Err(AsmError::new(
                                line_no,
                                col,
                                text,
                                format!("malformed integer literal `{text}`"),
                            ));
                        }
                    }
                }
                c if is_ident_start(c) => {
                    let start = byte;
                    let mut end = byte;
                    while let Some(&(b, ch)) = chars.peek() {
                        if is_ident_continue(ch) {
                            end = b + ch.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[start..end];
                    // `r<digits>` is always a register reference.
                    if let Some(idx) = text
                        .strip_prefix('r')
                        .filter(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
                    {
                        let idx: u32 = idx.parse().unwrap_or(u32::MAX);
                        if idx >= crate::NUM_REGS as u32 {
                            return Err(AsmError::new(
                                line_no,
                                col,
                                text,
                                format!(
                                    "register `{text}` out of range (registers are r0..r{})",
                                    crate::NUM_REGS - 1
                                ),
                            ));
                        }
                        push(Tok::Reg(idx as u8), text.to_string());
                    } else {
                        push(Tok::Ident(text.to_string()), text.to_string());
                    }
                }
                other => {
                    return Err(AsmError::new(
                        line_no,
                        col,
                        other.to_string(),
                        format!("unexpected character `{other}`"),
                    ));
                }
            }
        }
        out.push(Token {
            kind: Tok::Newline,
            line: line_no,
            col: line.chars().count() as u32 + 1,
            text: String::new(),
        });
    }
    let last_line = src.lines().count().max(1) as u32;
    out.push(Token {
        kind: Tok::Eof,
        line: last_line,
        col: 1,
        text: String::new(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_an_instruction_line() {
        assert_eq!(
            kinds("ld r1, 8(r2)"),
            vec![
                Tok::Ident("ld".into()),
                Tok::Reg(1),
                Tok::Comma,
                Tok::Int(8),
                Tok::LParen,
                Tok::Reg(2),
                Tok::RParen,
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_hex_and_negatives() {
        assert_eq!(
            kinds("li r1, 0x10 ; comment\n# full\n// also\nsubi r2, r1, -3"),
            vec![
                Tok::Ident("li".into()),
                Tok::Reg(1),
                Tok::Comma,
                Tok::Int(16),
                Tok::Newline,
                Tok::Newline,
                Tok::Newline,
                Tok::Ident("subi".into()),
                Tok::Reg(2),
                Tok::Comma,
                Tok::Reg(1),
                Tok::Comma,
                Tok::Minus,
                Tok::Int(3),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn directives_and_dotted_mnemonics_are_idents() {
        assert_eq!(
            kinds(".core 1\nfence.rel"),
            vec![
                Tok::Ident(".core".into()),
                Tok::Int(1),
                Tok::Newline,
                Tok::Ident("fence.rel".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn register_out_of_range_is_positioned() {
        let err = lex("  li r32, 1").unwrap_err();
        assert_eq!((err.line, err.col), (1, 6));
        assert_eq!(err.token, "r32");
    }

    #[test]
    fn bad_character_is_positioned() {
        let err = lex("li r1, 1\nld r2, @foo").unwrap_err();
        assert_eq!((err.line, err.col), (2, 8));
    }
}
