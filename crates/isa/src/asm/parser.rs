//! Parser and two-pass assembler for the `.asm` frontend.
//!
//! Parsing produces a directive-annotated item list; assembly then runs
//! once per core (prologue items are shared, `.core n` sections are
//! per-core), so expressions can reference the per-core builtins `TID`
//! and `NCORES` and every core gets its own label namespace.

use std::collections::HashMap;

use crate::{AluOp, AtomicOp, BranchCond, FenceKind, Instr, MemImage, ProgramBuilder, Reg};

use super::lexer::{lex, Tok, Token};
use super::{AsmError, AsmOptions, Assembled};

/// Mnemonic table for the three-register ALU forms; immediate forms are
/// the same names with an `i` suffix. Shared with the disassembler so the
/// two stay in sync by construction.
pub(super) const ALU_NAMES: [(&str, AluOp); 10] = [
    ("add", AluOp::Add),
    ("sub", AluOp::Sub),
    ("mul", AluOp::Mul),
    ("and", AluOp::And),
    ("or", AluOp::Or),
    ("xor", AluOp::Xor),
    ("shl", AluOp::Shl),
    ("shr", AluOp::Shr),
    ("sltu", AluOp::Sltu),
    ("slt", AluOp::Slt),
];

/// Branch-condition mnemonics. Shared with the disassembler.
pub(super) const BRANCH_NAMES: [(&str, BranchCond); 6] = [
    ("beq", BranchCond::Eq),
    ("bne", BranchCond::Ne),
    ("blt", BranchCond::Lt),
    ("bge", BranchCond::Ge),
    ("bltu", BranchCond::Ltu),
    ("bgeu", BranchCond::Geu),
];

/// A constant expression, evaluated per core (so `TID` works).
#[derive(Clone, Debug)]
enum Expr {
    Int(i64),
    Name { name: String, line: u32, col: u32 },
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &HashMap<String, i64>) -> Result<i64, AsmError> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Name { name, line, col } => env.get(name).copied().ok_or_else(|| {
                AsmError::new(*line, *col, name, format!("undefined name `{name}`"))
            }),
            Expr::Neg(e) => Ok(e.eval(env)?.wrapping_neg()),
            Expr::Add(a, b) => Ok(a.eval(env)?.wrapping_add(b.eval(env)?)),
            Expr::Sub(a, b) => Ok(a.eval(env)?.wrapping_sub(b.eval(env)?)),
            Expr::Mul(a, b) => Ok(a.eval(env)?.wrapping_mul(b.eval(env)?)),
        }
    }
}

/// An unresolved instruction: registers are final, immediates are
/// expressions, branch targets are label names.
#[derive(Clone, Debug)]
enum InstrAst {
    Op {
        op: AluOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    OpImm {
        op: AluOp,
        dst: Reg,
        a: Reg,
        imm: Expr,
    },
    LoadImm {
        dst: Reg,
        imm: Expr,
    },
    Load {
        dst: Reg,
        base: Reg,
        offset: Expr,
    },
    Store {
        src: Reg,
        base: Reg,
        offset: Expr,
    },
    Atomic {
        op: AtomicOp,
        dst: Reg,
        addr: Reg,
        expected: Reg,
        operand: Reg,
    },
    Branch {
        cond: BranchCond,
        a: Reg,
        b: Reg,
        target: LabelRef,
    },
    Jump {
        target: LabelRef,
    },
    Fence(FenceKind),
    Nop,
    Halt,
}

#[derive(Clone, Debug)]
struct LabelRef {
    name: String,
    line: u32,
    col: u32,
}

/// Which cores an item belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    /// Before the first `.core` directive: shared by every core.
    Prologue,
    /// Inside `.core n`.
    Core(usize),
}

#[derive(Clone, Debug)]
enum ItemKind {
    Label { name: String },
    Instr(InstrAst),
    Init { addr: Expr, value: Expr },
}

#[derive(Clone, Debug)]
struct Item {
    section: Section,
    line: u32,
    col: u32,
    kind: ItemKind,
}

#[derive(Clone, Debug)]
enum DefKind {
    Param,
    Const,
}

#[derive(Clone, Debug)]
struct Def {
    kind: DefKind,
    name: String,
    value: Option<Expr>,
    line: u32,
    col: u32,
}

#[derive(Debug, Default)]
struct Module {
    name: Option<String>,
    cores_expr: Option<(Expr, u32, u32)>,
    defs: Vec<Def>,
    items: Vec<Item>,
    max_core: Option<usize>,
}

/// Names reserved for per-core builtins.
const BUILTINS: [&str; 2] = ["TID", "NCORES"];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    section: Section,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> AsmError {
        let t = self.peek();
        AsmError::new(t.line, t.col, &t.text, msg)
    }

    fn expect(&mut self, kind: &Tok, what: &str) -> Result<Token, AsmError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn expect_reg(&mut self, what: &str) -> Result<Reg, AsmError> {
        match self.peek().kind {
            Tok::Reg(i) => {
                self.bump();
                Ok(Reg::new(i))
            }
            _ => Err(self.err_here(format!(
                "expected {what} register, found {}",
                self.peek().describe()
            ))),
        }
    }

    fn expect_comma(&mut self) -> Result<(), AsmError> {
        self.expect(&Tok::Comma, "`,`").map(|_| ())
    }

    fn expect_end_of_line(&mut self) -> Result<(), AsmError> {
        match self.peek().kind {
            Tok::Newline | Tok::Eof => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err_here(format!(
                "expected end of line, found {}",
                self.peek().describe()
            ))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Token), AsmError> {
        match &self.peek().kind {
            Tok::Ident(name) if !name.starts_with('.') => {
                let name = name.clone();
                let tok = self.bump();
                Ok((name, tok))
            }
            _ => Err(self.err_here(format!("expected {what}, found {}", self.peek().describe()))),
        }
    }

    // expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<Expr, AsmError> {
        let mut e = self.parse_term()?;
        loop {
            match self.peek().kind {
                Tok::Plus => {
                    self.bump();
                    e = Expr::Add(Box::new(e), Box::new(self.parse_term()?));
                }
                Tok::Minus => {
                    self.bump();
                    e = Expr::Sub(Box::new(e), Box::new(self.parse_term()?));
                }
                _ => return Ok(e),
            }
        }
    }

    // term := factor ('*' factor)*
    fn parse_term(&mut self) -> Result<Expr, AsmError> {
        let mut e = self.parse_factor()?;
        while self.peek().kind == Tok::Star {
            self.bump();
            e = Expr::Mul(Box::new(e), Box::new(self.parse_factor()?));
        }
        Ok(e)
    }

    // factor := INT | NAME | '-' factor | '(' expr ')'
    fn parse_factor(&mut self) -> Result<Expr, AsmError> {
        match &self.peek().kind {
            Tok::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_factor()?)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) if !name.starts_with('.') => {
                let t = self.bump();
                Ok(Expr::Name {
                    name: match t.kind {
                        Tok::Ident(n) => n,
                        _ => unreachable!(),
                    },
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Reg(_) => Err(self.err_here(format!(
                "expected an immediate expression, found register {}",
                self.peek().describe()
            ))),
            _ => Err(self.err_here(format!(
                "expected an immediate expression, found {}",
                self.peek().describe()
            ))),
        }
    }

    fn parse_directive(&mut self, module: &mut Module) -> Result<(), AsmError> {
        let tok = self.bump();
        let name = match &tok.kind {
            Tok::Ident(n) => n.clone(),
            _ => unreachable!("caller checked"),
        };
        match name.as_str() {
            ".name" => {
                let (n, _) = self.expect_ident("a workload name")?;
                module.name = Some(n);
            }
            ".cores" => {
                let e = self.parse_expr()?;
                module.cores_expr = Some((e, tok.line, tok.col));
            }
            ".core" => {
                let e = self.parse_expr()?;
                // A core index must be a plain constant over already-known
                // names; evaluate at end (needs params). Store as marker by
                // evaluating eagerly with an empty env only if literal;
                // otherwise defer. Keep it simple: require a literal index.
                let idx = match e {
                    Expr::Int(v) if v >= 0 => v as usize,
                    _ => {
                        return Err(AsmError::new(
                            tok.line,
                            tok.col,
                            &tok.text,
                            "`.core` takes a literal, non-negative core index",
                        ));
                    }
                };
                self.section = Section::Core(idx);
                module.max_core = Some(module.max_core.map_or(idx, |m| m.max(idx)));
            }
            ".param" | ".const" => {
                let (def_name, name_tok) = self.expect_ident("a name")?;
                if BUILTINS.contains(&def_name.as_str()) {
                    return Err(AsmError::new(
                        name_tok.line,
                        name_tok.col,
                        &def_name,
                        format!("`{def_name}` is a reserved builtin"),
                    ));
                }
                let value = if self.peek().kind == Tok::Eq {
                    self.bump();
                    Some(self.parse_expr()?)
                } else if name == ".const" {
                    return Err(self.err_here("`.const` needs `= <expr>`"));
                } else {
                    None
                };
                module.defs.push(Def {
                    kind: if name == ".param" {
                        DefKind::Param
                    } else {
                        DefKind::Const
                    },
                    name: def_name,
                    value,
                    line: name_tok.line,
                    col: name_tok.col,
                });
            }
            ".init" => {
                let addr = self.parse_expr()?;
                self.expect_comma()?;
                let value = self.parse_expr()?;
                module.items.push(Item {
                    section: self.section,
                    line: tok.line,
                    col: tok.col,
                    kind: ItemKind::Init { addr, value },
                });
            }
            ".reg" => {
                // `.reg rN = expr` — register-passed parameter, lowered to
                // a `li` at this point in the program.
                let dst = self.expect_reg("a destination")?;
                self.expect(&Tok::Eq, "`=`")?;
                let imm = self.parse_expr()?;
                module.items.push(Item {
                    section: self.section,
                    line: tok.line,
                    col: tok.col,
                    kind: ItemKind::Instr(InstrAst::LoadImm { dst, imm }),
                });
            }
            other => {
                return Err(AsmError::new(
                    tok.line,
                    tok.col,
                    other,
                    format!("unknown directive `{other}`"),
                ));
            }
        }
        self.expect_end_of_line()
    }

    fn parse_mem_operand(&mut self) -> Result<(Expr, Reg), AsmError> {
        // `<expr>(rB)` with the offset optional: `(rB)` means offset 0.
        let offset = if self.peek().kind == Tok::LParen
            && matches!(self.peek2().map(|t| &t.kind), Some(Tok::Reg(_)))
        {
            Expr::Int(0)
        } else {
            self.parse_expr()?
        };
        self.expect(&Tok::LParen, "`(`")?;
        let base = self.expect_reg("a base-address")?;
        self.expect(&Tok::RParen, "`)`")?;
        Ok((offset, base))
    }

    fn parse_atomic_addr(&mut self) -> Result<Reg, AsmError> {
        self.expect(&Tok::LParen, "`(`")?;
        let addr = self.expect_reg("an address")?;
        self.expect(&Tok::RParen, "`)`")?;
        Ok(addr)
    }

    fn parse_label_ref(&mut self) -> Result<LabelRef, AsmError> {
        let (name, tok) = self.expect_ident("a label name")?;
        Ok(LabelRef {
            name,
            line: tok.line,
            col: tok.col,
        })
    }

    fn parse_instr(&mut self, mnemonic: &str, tok: &Token) -> Result<InstrAst, AsmError> {
        if let Some(&(_, op)) = ALU_NAMES.iter().find(|(n, _)| *n == mnemonic) {
            let dst = self.expect_reg("a destination")?;
            self.expect_comma()?;
            let a = self.expect_reg("a source")?;
            self.expect_comma()?;
            let b = self.expect_reg("a source")?;
            return Ok(InstrAst::Op { op, dst, a, b });
        }
        if let Some(&(_, op)) = ALU_NAMES
            .iter()
            .find(|(n, _)| mnemonic.strip_suffix('i') == Some(n))
        {
            let dst = self.expect_reg("a destination")?;
            self.expect_comma()?;
            let a = self.expect_reg("a source")?;
            self.expect_comma()?;
            let imm = self.parse_expr()?;
            return Ok(InstrAst::OpImm { op, dst, a, imm });
        }
        if let Some(&(_, cond)) = BRANCH_NAMES.iter().find(|(n, _)| *n == mnemonic) {
            let a = self.expect_reg("a comparison")?;
            self.expect_comma()?;
            let b = self.expect_reg("a comparison")?;
            self.expect_comma()?;
            let target = self.parse_label_ref()?;
            return Ok(InstrAst::Branch { cond, a, b, target });
        }
        match mnemonic {
            "li" => {
                let dst = self.expect_reg("a destination")?;
                self.expect_comma()?;
                let imm = self.parse_expr()?;
                Ok(InstrAst::LoadImm { dst, imm })
            }
            "ld" => {
                let dst = self.expect_reg("a destination")?;
                self.expect_comma()?;
                let (offset, base) = self.parse_mem_operand()?;
                Ok(InstrAst::Load { dst, base, offset })
            }
            "st" => {
                let src = self.expect_reg("a source")?;
                self.expect_comma()?;
                let (offset, base) = self.parse_mem_operand()?;
                Ok(InstrAst::Store { src, base, offset })
            }
            "cas" => {
                let dst = self.expect_reg("a destination")?;
                self.expect_comma()?;
                let addr = self.parse_atomic_addr()?;
                self.expect_comma()?;
                let expected = self.expect_reg("an expected-value")?;
                self.expect_comma()?;
                let operand = self.expect_reg("a desired-value")?;
                Ok(InstrAst::Atomic {
                    op: AtomicOp::Cas,
                    dst,
                    addr,
                    expected,
                    operand,
                })
            }
            "fadd" | "swap" => {
                let op = if mnemonic == "fadd" {
                    AtomicOp::FetchAdd
                } else {
                    AtomicOp::Swap
                };
                let dst = self.expect_reg("a destination")?;
                self.expect_comma()?;
                let addr = self.parse_atomic_addr()?;
                self.expect_comma()?;
                let operand = self.expect_reg("an operand")?;
                Ok(InstrAst::Atomic {
                    op,
                    dst,
                    addr,
                    expected: Reg::ZERO,
                    operand,
                })
            }
            "j" => Ok(InstrAst::Jump {
                target: self.parse_label_ref()?,
            }),
            "fence" | "fence.full" => Ok(InstrAst::Fence(FenceKind::Full)),
            "fence.acq" | "fence.acquire" => Ok(InstrAst::Fence(FenceKind::Acquire)),
            "fence.rel" | "fence.release" => Ok(InstrAst::Fence(FenceKind::Release)),
            "nop" => Ok(InstrAst::Nop),
            "halt" => Ok(InstrAst::Halt),
            other => Err(AsmError::new(
                tok.line,
                tok.col,
                other,
                format!("unknown instruction mnemonic `{other}`"),
            )),
        }
    }

    fn parse_module(&mut self) -> Result<Module, AsmError> {
        let mut module = Module::default();
        loop {
            match &self.peek().kind {
                Tok::Eof => break,
                Tok::Newline => {
                    self.bump();
                }
                Tok::Ident(name) if name.starts_with('.') => {
                    self.parse_directive(&mut module)?;
                }
                Tok::Ident(_) => {
                    // `name:` is a label; anything else is an instruction.
                    if matches!(self.peek2().map(|t| &t.kind), Some(Tok::Colon)) {
                        let (name, tok) = self.expect_ident("a label")?;
                        self.bump(); // the colon
                        module.items.push(Item {
                            section: self.section,
                            line: tok.line,
                            col: tok.col,
                            kind: ItemKind::Label { name },
                        });
                        // A label may share its line with an instruction.
                        if matches!(self.peek().kind, Tok::Newline | Tok::Eof) {
                            self.bump();
                        }
                    } else {
                        let tok = self.peek().clone();
                        let (mnemonic, _) = self.expect_ident("an instruction")?;
                        let instr = self.parse_instr(&mnemonic, &tok)?;
                        module.items.push(Item {
                            section: self.section,
                            line: tok.line,
                            col: tok.col,
                            kind: ItemKind::Instr(instr),
                        });
                        self.expect_end_of_line()?;
                    }
                }
                _ => {
                    return Err(self.err_here(format!(
                        "expected an instruction, label or directive, found {}",
                        self.peek().describe()
                    )));
                }
            }
        }
        Ok(module)
    }
}

/// Resolves `.param`/`.const` definitions (with CLI/caller overrides) into
/// the global name environment.
fn resolve_defs(module: &Module, opts: &AsmOptions) -> Result<HashMap<String, i64>, AsmError> {
    let mut env: HashMap<String, i64> = HashMap::new();
    let mut is_param: HashMap<&str, bool> = HashMap::new();
    for def in &module.defs {
        if env.contains_key(&def.name) {
            return Err(AsmError::new(
                def.line,
                def.col,
                &def.name,
                format!("`{}` is defined more than once", def.name),
            ));
        }
        let overridden = match def.kind {
            DefKind::Param => opts
                .params
                .iter()
                .rev()
                .find(|(k, _)| *k == def.name)
                .map(|&(_, v)| v),
            DefKind::Const => None,
        };
        let value = match (overridden, &def.value) {
            (Some(v), _) => v,
            (None, Some(e)) => e.eval(&env)?,
            (None, None) => {
                return Err(AsmError::new(
                    def.line,
                    def.col,
                    &def.name,
                    format!(
                        "parameter `{}` has no default and no override was supplied",
                        def.name
                    ),
                ));
            }
        };
        is_param.insert(&def.name, matches!(def.kind, DefKind::Param));
        env.insert(def.name.clone(), value);
    }
    // Overrides must name declared parameters — a typo here would
    // otherwise silently change nothing.
    for (k, _) in &opts.params {
        match is_param.get(k.as_str()) {
            Some(true) => {}
            Some(false) => {
                return Err(AsmError::new(
                    0,
                    0,
                    k,
                    format!("`{k}` is a constant, not an overridable parameter"),
                ));
            }
            None => {
                return Err(AsmError::new(
                    0,
                    0,
                    k,
                    format!("override for undeclared parameter `{k}`"),
                ));
            }
        }
    }
    Ok(env)
}

fn lower(
    instr: &InstrAst,
    env: &HashMap<String, i64>,
    labels: &HashMap<&str, u32>,
) -> Result<Instr, AsmError> {
    let target = |r: &LabelRef| -> Result<u32, AsmError> {
        labels.get(r.name.as_str()).copied().ok_or_else(|| {
            AsmError::new(
                r.line,
                r.col,
                &r.name,
                format!("unknown label `{}`", r.name),
            )
        })
    };
    Ok(match instr {
        InstrAst::Op { op, dst, a, b } => Instr::Op {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
        },
        InstrAst::OpImm { op, dst, a, imm } => Instr::OpImm {
            op: *op,
            dst: *dst,
            a: *a,
            imm: imm.eval(env)?,
        },
        InstrAst::LoadImm { dst, imm } => Instr::LoadImm {
            dst: *dst,
            imm: imm.eval(env)?,
        },
        InstrAst::Load { dst, base, offset } => Instr::Load {
            dst: *dst,
            base: *base,
            offset: offset.eval(env)?,
        },
        InstrAst::Store { src, base, offset } => Instr::Store {
            src: *src,
            base: *base,
            offset: offset.eval(env)?,
        },
        InstrAst::Atomic {
            op,
            dst,
            addr,
            expected,
            operand,
        } => Instr::Atomic {
            op: *op,
            dst: *dst,
            addr: *addr,
            expected: *expected,
            operand: *operand,
        },
        InstrAst::Branch {
            cond,
            a,
            b,
            target: t,
        } => Instr::Branch {
            cond: *cond,
            a: *a,
            b: *b,
            target: target(t)?,
        },
        InstrAst::Jump { target: t } => Instr::Jump { target: target(t)? },
        InstrAst::Fence(kind) => Instr::Fence(*kind),
        InstrAst::Nop => Instr::Nop,
        InstrAst::Halt => Instr::Halt,
    })
}

/// Parses and assembles `src` under `opts`.
pub(super) fn assemble_impl(src: &str, opts: &AsmOptions) -> Result<Assembled, AsmError> {
    let toks = lex(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        section: Section::Prologue,
    };
    let module = parser.parse_module()?;
    let env = resolve_defs(&module, opts)?;

    // Core count: `.cores` wins (and must cover every `.core` section);
    // otherwise the highest section index + 1; otherwise 1.
    let ncores = match &module.cores_expr {
        Some((e, line, col)) => {
            let n = e.eval(&env)?;
            if n < 1 {
                return Err(AsmError::new(
                    *line,
                    *col,
                    ".cores",
                    format!("`.cores` must be at least 1, got {n}"),
                ));
            }
            let n = n as usize;
            if let Some(max) = module.max_core {
                if max >= n {
                    return Err(AsmError::new(
                        *line,
                        *col,
                        ".cores",
                        format!("`.core {max}` section exceeds `.cores {n}`"),
                    ));
                }
            }
            n
        }
        None => module.max_core.map_or(1, |m| m + 1),
    };

    // Initial memory: prologue `.init`s see no TID; section `.init`s do.
    let mut initial_mem = MemImage::new();
    for item in &module.items {
        if let ItemKind::Init { addr, value } = &item.kind {
            let mut env = env.clone();
            env.insert("NCORES".to_string(), ncores as i64);
            if let Section::Core(c) = item.section {
                env.insert("TID".to_string(), c as i64);
            }
            let addr = addr.eval(&env)?;
            if addr < 0 || !(addr as u64).is_multiple_of(crate::WORD_BYTES) {
                return Err(AsmError::new(
                    item.line,
                    item.col,
                    ".init",
                    format!("`.init` address {addr:#x} is not 8-byte aligned"),
                ));
            }
            initial_mem.store(addr as u64, value.eval(&env)? as u64);
        }
    }

    // Per-core assembly: prologue + this core's sections, two passes
    // (label placement, then lowering).
    let mut programs = Vec::with_capacity(ncores);
    for core in 0..ncores {
        let in_core = |s: Section| s == Section::Prologue || s == Section::Core(core);
        let mut env = env.clone();
        env.insert("TID".to_string(), core as i64);
        env.insert("NCORES".to_string(), ncores as i64);

        let mut labels: HashMap<&str, u32> = HashMap::new();
        let mut pc: u32 = 0;
        for item in &module.items {
            if !in_core(item.section) {
                continue;
            }
            match &item.kind {
                ItemKind::Label { name } => {
                    if labels.insert(name, pc).is_some() {
                        return Err(AsmError::new(
                            item.line,
                            item.col,
                            name,
                            format!("label `{name}` is defined more than once (core {core})"),
                        ));
                    }
                }
                ItemKind::Instr(_) => pc += 1,
                ItemKind::Init { .. } => {}
            }
        }

        let mut b = ProgramBuilder::new();
        for item in &module.items {
            if !in_core(item.section) {
                continue;
            }
            if let ItemKind::Instr(ast) = &item.kind {
                b.emit(lower(ast, &env, &labels)?);
            }
        }
        programs.push(b.build());
    }

    Ok(Assembled {
        name: module.name,
        programs,
        initial_mem,
    })
}
