//! Disassembler: renders [`Program`]s back to parseable assembly text.
//!
//! The printer and parser share mnemonic tables, so
//! `assemble(&disassemble(p))` reproduces `p` exactly (labels are
//! synthesized as `L<pc>` at every branch/jump target).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{AtomicOp, FenceKind, Instr, Program};

use super::parser::{ALU_NAMES, BRANCH_NAMES};

fn alu_name(op: crate::AluOp) -> &'static str {
    ALU_NAMES
        .iter()
        .find(|(_, o)| *o == op)
        .map(|(n, _)| *n)
        .expect("every AluOp has a mnemonic")
}

fn branch_name(cond: crate::BranchCond) -> &'static str {
    BRANCH_NAMES
        .iter()
        .find(|(_, c)| *c == cond)
        .map(|(n, _)| *n)
        .expect("every BranchCond has a mnemonic")
}

fn print_program(out: &mut String, p: &Program) {
    // Collect branch/jump targets so we can drop labels there.
    let targets: BTreeSet<u32> = p
        .instrs()
        .iter()
        .filter_map(|i| match i {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
            _ => None,
        })
        .collect();
    let label = |pc: u32| format!("L{pc}");

    for (pc, instr) in p.instrs().iter().enumerate() {
        let pc = pc as u32;
        if targets.contains(&pc) {
            let _ = writeln!(out, "{}:", label(pc));
        }
        let _ = match instr {
            Instr::Op { op, dst, a, b } => {
                writeln!(out, "    {} {dst}, {a}, {b}", alu_name(*op))
            }
            Instr::OpImm { op, dst, a, imm } => {
                writeln!(out, "    {}i {dst}, {a}, {imm}", alu_name(*op))
            }
            Instr::LoadImm { dst, imm } => writeln!(out, "    li {dst}, {imm}"),
            Instr::Load { dst, base, offset } => {
                writeln!(out, "    ld {dst}, {offset}({base})")
            }
            Instr::Store { src, base, offset } => {
                writeln!(out, "    st {src}, {offset}({base})")
            }
            Instr::Atomic {
                op,
                dst,
                addr,
                expected,
                operand,
            } => match op {
                AtomicOp::Cas => {
                    writeln!(out, "    cas {dst}, ({addr}), {expected}, {operand}")
                }
                AtomicOp::FetchAdd => writeln!(out, "    fadd {dst}, ({addr}), {operand}"),
                AtomicOp::Swap => writeln!(out, "    swap {dst}, ({addr}), {operand}"),
            },
            Instr::Branch { cond, a, b, target } => writeln!(
                out,
                "    {} {a}, {b}, {}",
                branch_name(*cond),
                label(*target)
            ),
            Instr::Jump { target } => writeln!(out, "    j {}", label(*target)),
            Instr::Fence(kind) => writeln!(
                out,
                "    {}",
                match kind {
                    FenceKind::Acquire => "fence.acq",
                    FenceKind::Release => "fence.rel",
                    FenceKind::Full => "fence.full",
                }
            ),
            Instr::Nop => writeln!(out, "    nop"),
            Instr::Halt => writeln!(out, "    halt"),
        };
    }
    // A trailing label (branch to just past the end) still needs a home.
    let end = p.len() as u32;
    if targets.contains(&end) {
        let _ = writeln!(out, "{}:", label(end));
    }
}

pub(super) fn disassemble_impl(programs: &[Program]) -> String {
    let mut out = String::new();
    for (core, p) in programs.iter().enumerate() {
        if core > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, ".core {core}");
        print_program(&mut out, p);
    }
    out
}
