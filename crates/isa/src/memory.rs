use crate::MemImage;

/// The memory interface the interpreter executes against.
///
/// [`Interp::step`](crate::Interp::step) is generic over this trait so the
/// same functional core can run against the single-threaded sparse
/// [`MemImage`] (recording, sequential replay) or against a concurrently
/// shared image ([`SharedMem`](crate::SharedMem) handles, the multithreaded
/// replay engine). All methods take `&mut self`: a shared-memory handle
/// mutates worker-local page caches even on loads.
///
/// Addresses are byte addresses aligned to [`WORD_BYTES`](crate::WORD_BYTES);
/// unwritten memory reads as zero — the same contract [`MemImage`]
/// documents.
pub trait Memory {
    /// Reads the word at `addr`.
    fn load(&mut self, addr: u64) -> u64;

    /// Writes the word at `addr`.
    fn store(&mut self, addr: u64, value: u64);

    /// Atomically performs a read-modify-write, returning the old value.
    ///
    /// `f` maps the old value to `Some(new)` (store `new`) or `None` (leave
    /// memory unchanged, as in a failed compare-and-swap). Implementations
    /// backed by compare-and-swap loops may call `f` more than once, so it
    /// must be a pure function of its argument.
    fn rmw(&mut self, addr: u64, f: impl FnMut(u64) -> Option<u64>) -> u64;
}

impl Memory for MemImage {
    fn load(&mut self, addr: u64) -> u64 {
        MemImage::load(self, addr)
    }

    fn store(&mut self, addr: u64, value: u64) {
        MemImage::store(self, addr, value);
    }

    fn rmw(&mut self, addr: u64, f: impl FnMut(u64) -> Option<u64>) -> u64 {
        MemImage::rmw(self, addr, f)
    }
}
