use core::fmt;

use crate::NUM_REGS;

/// An architectural register identifier.
///
/// The ISA has [`NUM_REGS`](crate::NUM_REGS) (32) general-purpose 64-bit
/// registers. Register 0 is **not** hard-wired to zero, but by convention the
/// workloads in this repository keep [`Reg::ZERO`] holding zero; the
/// interpreter initializes all registers to zero.
///
/// ```
/// use rr_isa::Reg;
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Register 0, conventionally kept at zero by workloads.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// Returns the register index in `0..NUM_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(NUM_REGS as u8);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Reg::ZERO.to_string(), "r0");
        assert_eq!(format!("{:?}", Reg::new(31)), "r31");
    }
}
