//! # rr-isa — mini ISA for the RelaxReplay reproduction
//!
//! The RelaxReplay paper ([Honarmand & Torrellas, ASPLOS 2014]) evaluates its
//! memory-race recorder on SPLASH-2 binaries running on a simulated
//! out-of-order multicore. This crate provides the instruction set that our
//! reproduction's simulator executes, together with:
//!
//! * [`Instr`] — the instruction definitions (ALU ops, 8-byte loads/stores,
//!   atomic read-modify-writes, conditional branches, fences),
//! * [`ProgramBuilder`] — an assembler-like builder with labels for writing
//!   workloads programmatically,
//! * [`asm`] — a text assembler (`.asm` source with labels, per-core
//!   sections, fences and parameters → per-core [`Program`]s plus an
//!   initial [`MemImage`]), and a matching disassembler,
//! * [`MemImage`] — a sparse, word-granular shared-memory image,
//! * [`Interp`] — a sequential interpreter used both as the functional
//!   reference during recording and as the "native hardware" during replay
//!   (it supports the instruction-count breakpoints, register value
//!   injection and instruction skipping that replay needs; see paper §3.5).
//!
//! Values and memory words are 64-bit; memory accesses are 8-byte aligned.
//!
//! ```
//! use rr_isa::{Interp, MemImage, ProgramBuilder, Reg, StopReason};
//!
//! let mut b = ProgramBuilder::new();
//! let r1 = Reg::new(1);
//! b.load_imm(r1, 7);
//! b.add_imm(r1, r1, 35);
//! b.store(r1, Reg::ZERO, 0x100);
//! b.halt();
//! let program = b.build();
//!
//! let mut mem = MemImage::new();
//! let mut interp = Interp::new(&program);
//! let stop = interp.run(&mut mem, u64::MAX);
//! assert_eq!(stop, StopReason::Halted);
//! assert_eq!(mem.load(0x100), 42);
//! ```
//!
//! [Honarmand & Torrellas, ASPLOS 2014]: https://doi.org/10.1145/2541940.2541979

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
mod instr;
mod interp;
mod mem_image;
mod memory;
mod program;
mod reg;
mod shared_mem;

pub use instr::{AluOp, AtomicOp, BranchCond, FenceKind, Instr};
pub use interp::{Interp, StepEvent, StopReason};
pub use mem_image::MemImage;
pub use memory::Memory;
pub use program::{Label, Program, ProgramBuilder, ProgramError};
pub use reg::Reg;
pub use shared_mem::{SharedMem, SharedMemHandle};

/// Number of architectural registers in the ISA.
pub const NUM_REGS: usize = 32;

/// Size in bytes of a memory word (all loads/stores are word-sized).
pub const WORD_BYTES: u64 = 8;
