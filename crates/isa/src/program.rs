use core::fmt;

use crate::{AluOp, AtomicOp, BranchCond, FenceKind, Instr, Reg};

/// A forward-referenceable jump/branch target used with
/// [`ProgramBuilder`].
///
/// Create with [`ProgramBuilder::label`], bind with
/// [`ProgramBuilder::bind`]. A label may be referenced before it is bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An executable program for one thread: a sequence of [`Instr`] with all
/// labels resolved.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Returns the instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Returns the number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Returns the instruction sequence.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:6}: {i}")?;
        }
        Ok(())
    }
}

/// Errors produced when building a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced by a branch or jump but never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    ReboundLabel(Label),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            ProgramError::ReboundLabel(l) => write!(f, "label {l:?} bound more than once"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An assembler-like builder for [`Program`]s, with labels for loops and
/// forward branches.
///
/// ```
/// use rr_isa::{BranchCond, ProgramBuilder, Reg};
///
/// // Sum 0..10 into r1.
/// let mut b = ProgramBuilder::new();
/// let (i, sum, limit) = (Reg::new(1), Reg::new(2), Reg::new(3));
/// b.load_imm(i, 0);
/// b.load_imm(sum, 0);
/// b.load_imm(limit, 10);
/// let top = b.bind_new();
/// b.add(sum, sum, i);
/// b.add_imm(i, i, 1);
/// b.branch(BranchCond::Lt, i, limit, top);
/// b.halt();
/// let program = b.build();
/// assert!(program.len() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    // For each label id: the bound instruction index, if bound.
    labels: Vec<Option<usize>>,
    // (instruction index, label id) pairs to fix up at build time.
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the index the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (the error is also reported by
    /// [`ProgramBuilder::try_build`], but double-binding is always a bug in
    /// the generator, so it fails fast).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {label:?} bound more than once"
        );
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Creates a label bound to the current position.
    pub fn bind_new(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Emits `dst = op(a, b)`.
    pub fn op(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Instr::Op { op, dst, a, b })
    }

    /// Emits `dst = op(a, imm)`.
    pub fn op_imm(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::OpImm { op, dst, a, imm })
    }

    /// Emits `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.op(AluOp::Add, dst, a, b)
    }

    /// Emits `dst = a + imm`.
    pub fn add_imm(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Add, dst, a, imm)
    }

    /// Emits `dst = a * b`.
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.op(AluOp::Mul, dst, a, b)
    }

    /// Emits `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.op(AluOp::Xor, dst, a, b)
    }

    /// Emits `dst = imm`.
    pub fn load_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::LoadImm { dst, imm })
    }

    /// Emits `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Load { dst, base, offset })
    }

    /// Emits `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Store { src, base, offset })
    }

    /// Emits a compare-and-swap (`dst` receives the old value).
    pub fn cas(&mut self, dst: Reg, addr: Reg, expected: Reg, desired: Reg) -> &mut Self {
        self.emit(Instr::Atomic {
            op: AtomicOp::Cas,
            dst,
            addr,
            expected,
            operand: desired,
        })
    }

    /// Emits a fetch-and-add (`dst` receives the old value).
    pub fn fetch_add(&mut self, dst: Reg, addr: Reg, operand: Reg) -> &mut Self {
        self.emit(Instr::Atomic {
            op: AtomicOp::FetchAdd,
            dst,
            addr,
            expected: Reg::ZERO,
            operand,
        })
    }

    /// Emits an atomic exchange (`dst` receives the old value).
    pub fn swap(&mut self, dst: Reg, addr: Reg, operand: Reg) -> &mut Self {
        self.emit(Instr::Atomic {
            op: AtomicOp::Swap,
            dst,
            addr,
            expected: Reg::ZERO,
            operand,
        })
    }

    /// Emits a conditional branch to `target`.
    pub fn branch(&mut self, cond: BranchCond, a: Reg, b: Reg, target: Label) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, target.0));
        self.emit(Instr::Branch {
            cond,
            a,
            b,
            target: u32::MAX, // patched in build()
        })
    }

    /// Emits an unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, target.0));
        self.emit(Instr::Jump { target: u32::MAX })
    }

    /// Emits a fence of the given kind.
    pub fn fence(&mut self, kind: FenceKind) -> &mut Self {
        self.emit(Instr::Fence(kind))
    }

    /// Emits `count` no-ops (useful to stretch the non-memory distance
    /// between memory accesses, exercising the TRAQ's NMI field).
    pub fn nops(&mut self, count: usize) -> &mut Self {
        for _ in 0..count {
            self.emit(Instr::Nop);
        }
        self
    }

    /// Emits a halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn try_build(self) -> Result<Program, ProgramError> {
        let mut instrs = self.instrs;
        for (at, label_id) in self.fixups {
            let Some(pos) = self.labels[label_id] else {
                return Err(ProgramError::UnboundLabel(Label(label_id)));
            };
            let target = pos as u32;
            match &mut instrs[at] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        Ok(Program { instrs })
    }

    /// Resolves labels and returns the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound; use
    /// [`ProgramBuilder::try_build`] for a fallible variant.
    #[must_use]
    pub fn build(self) -> Program {
        match self.try_build() {
            Ok(p) => p,
            Err(e) => panic!("program build failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let fwd = b.label();
        let back = b.bind_new();
        b.jump(fwd);
        b.branch(BranchCond::Eq, Reg::ZERO, Reg::ZERO, back);
        b.bind(fwd);
        b.halt();
        let p = b.build();
        assert_eq!(p.get(0), Some(&Instr::Jump { target: 2 }));
        match p.get(1) {
            Some(Instr::Branch { target, .. }) => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        assert!(matches!(b.try_build(), Err(ProgramError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound more than once")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.bind_new();
        b.bind(l);
    }

    #[test]
    fn display_lists_every_instruction() {
        let mut b = ProgramBuilder::new();
        b.nops(3).halt();
        let text = b.build().to_string();
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.here(), 0);
        b.nops(2);
        assert_eq!(b.here(), 2);
    }
}
