//! Wire-codec throughput benches — the evidence behind the fast-path
//! decode work (batched varint decode, sliced CRC32, zero-copy chunk
//! cursor, parallel per-core ingest).
//!
//! This bench owns its harness (the vendored criterion shim has no CLI or
//! machine-readable output): it times encode/decode at 1K / 100K / 10M /
//! 100M entries (the 100M stream is generated straight through a
//! `ChunkedWriter` and decoded into a reused output log — the replay
//! engine's steady-state ingest pattern), `decode_logs_parallel` at 1/2/8
//! workers, and single-stream range-partitioned decode
//! (`parallel_decode_stream`), writes the results as `BENCH_codec.json`,
//! and — on every invocation — decodes the checked-in sample `.rrlog`
//! files (v1/v2/v3 framing) with the fast decoder, the byte-at-a-time
//! reference decoder, the streaming readers, and the range-parallel
//! decoder, exiting nonzero on any disagreement (the CI `bench-smoke`
//! gate). The `--test` mode also hard-gates the `workers == 1` ingest
//! path: it must cost no more than a plain serial decode loop.
//!
//! ```text
//! cargo bench -p rr-bench --bench codec            full measurement
//! cargo bench -p rr-bench --bench codec -- --test  CI smoke (fast, same JSON)
//! cargo bench -p rr-bench --bench codec -- --out path/to.json
//! cargo bench -p rr-bench --bench codec -- --regen-data  rewrite data/*.rrlog
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use relaxreplay::prof::CodecPhases;
use relaxreplay::wire::{
    decode_chunked, decode_chunked_into, decode_chunked_profiled, decode_chunked_reference,
    encode_chunked, encode_chunked_with_version, read_rrlog, ChunkedReader, ChunkedWriter,
    DecodeScratch, DEFAULT_CHUNK_BYTES, MIN_VERSION, VERSION,
};
use relaxreplay::{IntervalLog, LogEntry, LogSink, LogSource};
use rr_mem::CoreId;
use rr_replay::{decode_chunked_parallel, decode_logs_parallel};

/// Appends step `i` of the synthetic entry mix to `out`: a long inorder
/// run, periodic reordered loads/stores, the odd RMW, one frame per
/// interval — the recorder's real shape.
fn entry_batch(i: u64, out: &mut Vec<LogEntry>) {
    out.clear();
    out.push(LogEntry::InorderBlock {
        instrs: 50 + (i % 100) as u32,
    });
    if i.is_multiple_of(3) {
        out.push(LogEntry::ReorderedLoad {
            value: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        });
    }
    if i.is_multiple_of(5) {
        out.push(LogEntry::ReorderedStore {
            addr: (i % 4096) * 8,
            value: i,
            offset: (i % 7) as u32,
        });
    }
    if i.is_multiple_of(17) {
        out.push(LogEntry::ReorderedRmw {
            loaded: i,
            addr: (i % 512) * 8,
            stored: if i.is_multiple_of(2) {
                Some(i + 1)
            } else {
                None
            },
            offset: 1,
        });
    }
    out.push(LogEntry::IntervalFrame {
        cisn: i as u16,
        timestamp: i * 170 + (i % 13),
    });
}

/// A synthetic log with the recorder's real entry mix (see
/// [`entry_batch`]).
fn synthetic_log(core: u8, entries: usize) -> IntervalLog {
    let mut log = IntervalLog::new(CoreId::new(core));
    log.entries.reserve(entries);
    let mut batch = Vec::new();
    let mut i = 0u64;
    while log.entries.len() < entries {
        entry_batch(i, &mut batch);
        log.entries.extend(batch.iter().cloned());
        i += 1;
    }
    log.entries.truncate(entries);
    // Keep the stream well-formed: a log should end on a frame.
    if !matches!(log.entries.last(), Some(LogEntry::IntervalFrame { .. })) {
        log.entries.pop();
        log.entries.push(LogEntry::IntervalFrame {
            cisn: i as u16,
            timestamp: i * 170,
        });
    }
    log
}

/// Encodes the same entry mix straight through a [`ChunkedWriter`]
/// without materializing the input log: at 100M entries the in-memory
/// `Vec<LogEntry>` would cost gigabytes for no measurement value — the
/// bench only needs the wire bytes.
fn synthetic_stream(core: u8, entries: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = ChunkedWriter::new(&mut out, CoreId::new(core)).expect("Vec writes cannot fail");
    let mut batch = Vec::new();
    // Hold one entry back so the tail can be fixed up to end on a frame,
    // mirroring `synthetic_log`.
    let mut pending: Option<LogEntry> = None;
    let mut emitted = 0usize;
    let mut i = 0u64;
    'gen: while emitted < entries {
        entry_batch(i, &mut batch);
        i += 1;
        for e in &batch {
            if let Some(p) = pending.take() {
                w.emit(&p).expect("Vec writes cannot fail");
            }
            pending = Some(*e);
            emitted += 1;
            if emitted == entries {
                break 'gen;
            }
        }
    }
    let last = pending.expect("entries >= 1");
    if matches!(last, LogEntry::IntervalFrame { .. }) {
        w.emit(&last).expect("Vec writes cannot fail");
    } else {
        w.emit(&LogEntry::IntervalFrame {
            cisn: i as u16,
            timestamp: i * 170,
        })
        .expect("Vec writes cannot fail");
    }
    w.close().expect("Vec writes cannot fail");
    out
}

struct Sample {
    name: String,
    entries: usize,
    bytes: usize,
    median_ns: f64,
    mb_per_s: f64,
    /// `(requested, effective)` worker counts — parallel benches only.
    workers: Option<(usize, usize)>,
    /// Per-phase decode attribution from one profiled pass — decode
    /// benches only.
    phases: Option<CodecPhases>,
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Times `f` and returns the median per-iteration nanoseconds. `bytes` is
/// the payload size used for throughput. In smoke mode everything runs
/// once or twice — enough to prove the path works, not to measure it.
fn measure<F: FnMut()>(smoke: bool, bytes: usize, mut f: F) -> f64 {
    // Warm-up + rate estimate.
    let t = Instant::now();
    f();
    let one = t.elapsed().as_secs_f64().max(1e-9);
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_nanos() as f64;
    }
    // ~0.2 s per sample, 7 samples, at least 1 iter per sample.
    let iters = ((0.2 / one).ceil() as u64).clamp(1, 1_000_000);
    let _ = bytes;
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn push_sample(out: &mut Vec<Sample>, name: String, entries: usize, bytes: usize, median_ns: f64) {
    let mb_per_s = bytes as f64 / median_ns * 1e9 / 1e6;
    println!("{name:<28} {median_ns:>12.0} ns/iter  {mb_per_s:>9.1} MB/s  ({bytes} B)");
    out.push(Sample {
        name,
        entries,
        bytes,
        median_ns,
        mb_per_s,
        workers: None,
        phases: None,
    });
}

/// Times the steady-state decode of `bytes` — `decode_chunked_into` with
/// a reused output log, the replay engine's actual ingest pattern (a
/// fresh multi-hundred-MB output `Vec` per iteration would measure page
/// faults, not the codec) — then runs one profiled pass for the phase
/// decomposition.
fn bench_decode_row(smoke: bool, out: &mut Vec<Sample>, tag: &str, entries: usize, bytes: &[u8]) {
    let mut reused = IntervalLog::new(CoreId::new(0));
    let ns = measure(smoke, bytes.len(), || {
        decode_chunked_into(std::hint::black_box(bytes), &mut reused).expect("decodes");
        std::hint::black_box(&reused);
    });
    push_sample(
        out,
        format!("decode_chunked/{tag}"),
        entries,
        bytes.len(),
        ns,
    );
    drop(reused); // keep the profiled pass's peak footprint to one output log
    let mut phases = CodecPhases::default();
    std::hint::black_box(decode_chunked_profiled(bytes, &mut phases).expect("decodes"));
    println!("{:<28} {}", format!("  phases/{tag}"), phases.summary());
    out.last_mut().expect("just pushed").phases = Some(phases);
}

fn bench_codec(smoke: bool, out: &mut Vec<Sample>) {
    let sizes: &[(usize, &str)] = if smoke {
        &[(1_000, "1k"), (100_000, "100k")]
    } else {
        &[(1_000, "1k"), (100_000, "100k"), (10_000_000, "10m")]
    };
    for &(entries, tag) in sizes {
        let log = synthetic_log(0, entries);
        let bytes = encode_chunked(&log);
        let ns = measure(smoke, bytes.len(), || {
            std::hint::black_box(encode_chunked(std::hint::black_box(&log)));
        });
        push_sample(
            out,
            format!("encode_chunked/{tag}"),
            entries,
            bytes.len(),
            ns,
        );
        drop(log);
        bench_decode_row(smoke, out, tag, entries, &bytes);
    }
    // The 100M row — the decode cliff this bench exists to watch. The
    // ~525 MB input stream is generated without materializing an input
    // log; there is no encode row because `encode_chunked` needs one.
    // Runs in `--test` mode too (once through), so CI sees the cliff.
    let entries = 100_000_000usize;
    let bytes = synthetic_stream(0, entries);
    bench_decode_row(smoke, out, "100m", entries, &bytes);
}

fn bench_parallel(smoke: bool, out: &mut Vec<Sample>) -> Result<(), String> {
    let entries = if smoke { 20_000 } else { 400_000 };
    let logs: Vec<Vec<u8>> = (0..8)
        .map(|core| encode_chunked(&synthetic_log(core, entries)))
        .collect();
    let streams: Vec<&[u8]> = logs.iter().map(Vec::as_slice).collect();
    let total: usize = logs.iter().map(Vec::len).sum();
    // Serial baseline for the workers=1 overhead gate below: the same
    // decodes, plain loop, no pool in sight. Collect into a Vec exactly
    // like `decode_logs_parallel` returns — dropping each log as it
    // decodes would give the baseline a smaller live-memory peak (one log
    // vs eight) and turn the gate into an allocator benchmark.
    let serial_ns = measure(smoke, total, || {
        let decoded: Vec<IntervalLog> = streams
            .iter()
            .map(|s| decode_chunked(std::hint::black_box(s)).expect("decodes"))
            .collect();
        std::hint::black_box(decoded);
    });
    let mut w1_ns = f64::INFINITY;
    for workers in [1usize, 2, 8] {
        let ns = measure(smoke, total, || {
            std::hint::black_box(
                decode_logs_parallel(std::hint::black_box(&streams), workers).expect("decodes"),
            );
        });
        if workers == 1 {
            w1_ns = ns;
        }
        push_sample(
            out,
            format!("parallel_decode/{workers}"),
            entries * 8,
            total,
            ns,
        );
        // The pool spawns min(workers, streams) threads; the host can only
        // run min(that, cpus) of them at once — recorded so the trajectory
        // is interpretable on 1-cpu CI runners.
        let effective = workers.min(streams.len()).min(host_cpus());
        out.last_mut().expect("just pushed").workers = Some((workers, effective));
    }
    // workers=1 must dispatch inline on the caller thread — the pool once
    // cost tens of percent here. The margin absorbs scheduler noise
    // (smoke mode times a single iteration).
    let limit = if smoke { 2.0 } else { 1.3 };
    if w1_ns > serial_ns * limit {
        return Err(format!(
            "parallel_decode/1 ({w1_ns:.0} ns) exceeds {limit}x the plain serial loop \
             ({serial_ns:.0} ns): the workers=1 ingest path must dispatch inline"
        ));
    }

    // Range-partitioned decode of ONE stream (v3 chunks are
    // self-contained, so a single big log no longer serializes ingest).
    let big_entries = if smoke { 200_000 } else { 4_000_000 };
    let big = synthetic_stream(9, big_entries);
    for workers in [1usize, 2, 8] {
        let ns = measure(smoke, big.len(), || {
            std::hint::black_box(
                decode_chunked_parallel(std::hint::black_box(&big), workers).expect("decodes"),
            );
        });
        push_sample(
            out,
            format!("parallel_decode_stream/{workers}"),
            big_entries,
            big.len(),
            ns,
        );
        let effective = workers.min(host_cpus());
        out.last_mut().expect("just pushed").workers = Some((workers, effective));
    }
    Ok(())
}

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("data")
}

/// Rewrites the checked-in sample logs, one per supported wire version,
/// each produced by its own versioned encoder. v1 and v2 share the
/// cross-chunk delta framing (their headers differ), but v3 resets delta
/// state per chunk, so its payload bytes genuinely differ — a header
/// re-stamp can no longer fake an old stream.
fn regen_data() -> std::io::Result<()> {
    let dir = data_dir();
    std::fs::create_dir_all(&dir)?;
    let log = synthetic_log(0, 4_000);
    for version in MIN_VERSION..=VERSION {
        let bytes = encode_chunked_with_version(&log, DEFAULT_CHUNK_BYTES, version);
        std::fs::write(dir.join(format!("sample_v{version}.rrlog")), &bytes)?;
    }
    println!("sample logs rewritten under {}", dir.display());
    Ok(())
}

/// Decodes every checked-in sample with the fast path, the reference
/// decoder, and the streaming `LogSource` reader; any disagreement is a
/// codec bug and fails the bench (and CI).
fn reference_check() -> Result<usize, String> {
    let dir = data_dir();
    let mut checked = 0usize;
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rrlog"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no sample .rrlog files under {}", dir.display()));
    }
    for path in names {
        let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let fast = decode_chunked(&bytes);
        let reference = decode_chunked_reference(&bytes);
        if fast != reference {
            return Err(format!(
                "{}: fast decoder disagrees with the reference decoder\n  fast: {fast:?}\n  ref:  {reference:?}",
                path.display()
            ));
        }
        // The profiled decoder is a separate walk — gate its parity too.
        let mut phases = CodecPhases::default();
        let profiled = decode_chunked_profiled(&bytes, &mut phases);
        if profiled != fast {
            return Err(format!(
                "{}: profiled decoder disagrees with the fast decoder",
                path.display()
            ));
        }
        // And the range-parallel decoder (it falls back to the sequential
        // path on pre-v3 streams, so this covers both dispatch arms).
        let parallel = decode_chunked_parallel(&bytes, 4);
        if parallel != fast {
            return Err(format!(
                "{}: range-parallel decoder disagrees with the fast decoder",
                path.display()
            ));
        }
        let log = fast.map_err(|e| format!("{}: sample does not decode: {e}", path.display()))?;
        // The streaming reader (replay's actual input path) must agree too.
        let mut src = ChunkedReader::new(bytes.as_slice())
            .map_err(|e| format!("{}: streaming open: {e}", path.display()))?;
        let mut streamed = IntervalLog::new(log.core);
        while let Some(e) = src
            .next_entry()
            .map_err(|e| format!("{}: streaming decode: {e}", path.display()))?
        {
            streamed.entries.push(e);
        }
        if streamed != log {
            return Err(format!(
                "{}: streaming reader disagrees with one-shot decode",
                path.display()
            ));
        }
        // And the file-based entry points: `read_rrlog` (mmap-backed) and
        // the zero-copy streaming `MappedSource`.
        let from_file = read_rrlog(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        if from_file != log {
            return Err(format!("{}: read_rrlog disagrees", path.display()));
        }
        let mut mapped = relaxreplay::MappedSource::open(&path)
            .map_err(|e| format!("{}: mmap open: {e}", path.display()))?;
        let mut via_map = IntervalLog::new(log.core);
        while let Some(e) = mapped
            .next_entry()
            .map_err(|e| format!("{}: mmap decode: {e}", path.display()))?
        {
            via_map.entries.push(e);
        }
        if via_map != log {
            return Err(format!(
                "{}: MappedSource disagrees with one-shot decode",
                path.display()
            ));
        }
        checked += 1;
    }
    // Scratch reuse across unrelated streams must not leak state.
    let mut scratch = DecodeScratch::new();
    let a = encode_chunked(&synthetic_log(1, 500));
    let b = encode_chunked(&synthetic_log(2, 300));
    for bytes in [&a, &b, &a] {
        let mut r = relaxreplay::wire::ChunkedReader::with_scratch(bytes.as_slice(), scratch)
            .map_err(|e| format!("scratch reader: {e}"))?;
        let mut n = 0usize;
        while r
            .next_entry()
            .map_err(|e| format!("scratch reader: {e}"))?
            .is_some()
        {
            n += 1;
        }
        let expect = decode_chunked(bytes).expect("decodes").entries.len();
        if n != expect {
            return Err(format!(
                "scratch reuse decoded {n} entries, expected {expect}"
            ));
        }
        scratch = r.into_scratch();
    }
    Ok(checked)
}

fn write_json(path: &Path, mode: &str, samples: &[Sample], checked: usize) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"rr-bench/codec/v2\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!(
        "  \"reference_check\": {{ \"files\": {checked}, \"ok\": true }},\n"
    ));
    s.push_str("  \"benches\": [\n");
    for (i, b) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"entries\": {}, \"bytes\": {}, \"median_ns\": {:.0}, \"mb_per_s\": {:.1}",
            b.name, b.entries, b.bytes, b.median_ns, b.mb_per_s,
        ));
        if let Some((requested, effective)) = b.workers {
            s.push_str(&format!(
                ", \"workers\": {requested}, \"effective_workers\": {effective}"
            ));
        }
        if let Some(p) = &b.phases {
            s.push_str(&format!(", \"phases\": {}", p.to_json()));
        }
        s.push_str(&format!(
            " }}{}\n",
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test" | "--smoke" => smoke = true,
            "--regen-data" => {
                return match regen_data() {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("codec bench: regen-data: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--out" => out_path = it.next().map(PathBuf::from),
            "--bench" => {} // cargo bench passes this through
            other => {
                // Ignore filters (cargo bench -- <filter> conventions).
                eprintln!("codec bench: ignoring argument {other:?}");
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_codec.json")
    });

    let checked = match reference_check() {
        Ok(n) => {
            println!("reference check: {n} sample log(s) decode identically on both decoders");
            n
        }
        Err(e) => {
            eprintln!("codec bench: REFERENCE CHECK FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut samples = Vec::new();
    bench_codec(smoke, &mut samples);
    if let Err(e) = bench_parallel(smoke, &mut samples) {
        eprintln!("codec bench: GATE FAILED: {e}");
        return ExitCode::FAILURE;
    }

    let mode = if smoke { "test" } else { "full" };
    if let Err(e) = write_json(&out_path, mode, &samples, checked) {
        eprintln!("codec bench: writing {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("results written to {}", out_path.display());
    ExitCode::SUCCESS
}
