//! Microbenchmarks of every RelaxReplay hardware structure and of the
//! simulation / replay pipelines.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use relaxreplay::{
    Design, IntervalLog, LogEntry, Recorder, RecorderConfig, Signature, SnoopTable, H3,
};
use rr_bench::{bench_record, bench_workload};
use rr_cpu::{CoreObserver, PerformRecord};
use rr_isa::{BranchCond, Interp, MemImage, ProgramBuilder, Reg};
use rr_mem::{AccessKind, CoreId, LineAddr};
use rr_replay::{patch, replay, CostModel};

fn bench_hash(c: &mut Criterion) {
    let h = H3::new(8, 42);
    c.bench_function("h3_hash", |b| {
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(0x9e37);
            black_box(h.hash(black_box(line)))
        })
    });
}

fn bench_signature(c: &mut Criterion) {
    c.bench_function("signature_insert_test", |b| {
        let mut sig = Signature::splash_default(1);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(7);
            sig.insert(LineAddr::from_line_number(n));
            black_box(sig.test(LineAddr::from_line_number(n ^ 1)))
        })
    });
}

fn bench_snoop_table(c: &mut Criterion) {
    c.bench_function("snoop_table_record_sample", |b| {
        let mut t = SnoopTable::splash_default(1);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(3);
            t.record(LineAddr::from_line_number(n));
            black_box(t.sample(LineAddr::from_line_number(n)))
        })
    });
}

fn bench_recorder_event_path(c: &mut Criterion) {
    // Dispatch + perform + retire + count: the recorder's full per-access
    // hardware path.
    c.bench_function("recorder_access_lifecycle", |b| {
        let mut rec = Recorder::new(
            CoreId::new(0),
            RecorderConfig::splash_default(Design::Opt, Some(4096)),
        );
        let mut seq = 0u64;
        b.iter(|| {
            assert!(rec.on_dispatch(seq, true));
            rec.on_perform(&PerformRecord {
                seq,
                kind: AccessKind::Load,
                addr: (seq % 512) * 8,
                line: LineAddr::containing((seq % 512) * 8),
                loaded: Some(seq),
                stored: None,
                cycle: seq,
            });
            rec.on_retire(seq, true, seq);
            rec.tick(seq);
            seq += 1;
        })
    });
}

fn sample_log() -> IntervalLog {
    let mut log = IntervalLog::new(CoreId::new(0));
    for i in 0..200u64 {
        log.entries.push(LogEntry::InorderBlock { instrs: 100 });
        if i % 3 == 0 {
            log.entries.push(LogEntry::ReorderedLoad { value: i });
        }
        if i % 5 == 0 && i > 0 {
            log.entries.push(LogEntry::ReorderedStore {
                addr: i * 8,
                value: i,
                offset: 1,
            });
        }
        log.entries.push(LogEntry::IntervalFrame {
            cisn: i as u16,
            timestamp: i * 1000,
        });
    }
    log
}

fn bench_log_codec(c: &mut Criterion) {
    let log = sample_log();
    let flat = log.encode_flat();
    let chunked = log.encode();

    // Size comparison: flat fixed-width vs chunked varint/delta `.rrlog`,
    // reported as bytes-per-kilo-instruction alongside the throughput
    // numbers (the instruction count is the sum of the InorderBlock runs).
    let instrs: u64 = log
        .entries
        .iter()
        .map(|e| match e {
            LogEntry::InorderBlock { instrs } => u64::from(*instrs),
            _ => 0,
        })
        .sum();
    let per_kinstr = |bytes: usize| bytes as f64 * 1000.0 / instrs as f64;
    eprintln!(
        "log codec sizes: flat {} B ({:.1} B/kinstr), chunked {} B ({:.1} B/kinstr), \
         ratio {:.3}",
        flat.len(),
        per_kinstr(flat.len()),
        chunked.len(),
        per_kinstr(chunked.len()),
        chunked.len() as f64 / flat.len() as f64
    );

    c.bench_function("log_encode_flat", |b| {
        b.iter(|| black_box(log.encode_flat()))
    });
    c.bench_function("log_encode_chunked", |b| b.iter(|| black_box(log.encode())));
    c.bench_function("log_decode_flat", |b| {
        b.iter(|| black_box(IntervalLog::decode_flat(&flat).expect("decodes")))
    });
    c.bench_function("log_decode_chunked", |b| {
        b.iter(|| black_box(IntervalLog::decode(&chunked).expect("decodes")))
    });
}

fn bench_patching(c: &mut Criterion) {
    let log = sample_log();
    c.bench_function("log_patch", |b| {
        b.iter(|| black_box(patch(&log).expect("patches")))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let mut bld = ProgramBuilder::new();
    let (i, lim, base, v) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
    bld.load_imm(i, 0)
        .load_imm(lim, 1000)
        .load_imm(base, 0x1000);
    let top = bld.bind_new();
    bld.op_imm(rr_isa::AluOp::And, v, i, 63);
    bld.op_imm(rr_isa::AluOp::Shl, v, v, 3);
    bld.add(v, base, v);
    bld.store(i, v, 0);
    bld.load(v, v, 0);
    bld.add_imm(i, i, 1);
    bld.branch(BranchCond::Lt, i, lim, top);
    bld.halt();
    let p = bld.build();
    c.bench_function("interpreter_7k_instrs", |b| {
        b.iter(|| {
            let mut mem = MemImage::new();
            let mut interp = Interp::new(&p);
            interp.run(&mut mem, u64::MAX);
            black_box(interp.retired())
        })
    });
}

fn bench_record_and_replay(c: &mut Criterion) {
    let w = bench_workload("fft");
    c.bench_function("record_fft_2c", |b| b.iter(|| black_box(bench_record(&w))));
    let result = bench_record(&w);
    let patched: Vec<_> = result.variants[1] // Opt-4K
        .logs
        .iter()
        .map(|l| patch(l).expect("patches"))
        .collect();
    c.bench_function("replay_fft_2c", |b| {
        b.iter(|| {
            black_box(
                replay(
                    &w.programs,
                    &patched,
                    w.initial_mem.clone(),
                    &CostModel::splash_default(),
                )
                .expect("replays"),
            )
        })
    });
}

fn bench_sweep_workers(c: &mut Criterion) {
    // The parallel sweep engine at 1/2/4/8 workers over 8 independent
    // recording jobs. On an N-core host the wall-clock should drop nearly
    // linearly up to N workers; the output is bit-identical at every
    // width (the `sweep_determinism` test pins that down).
    use rr_sim::{run_sweep, MachineConfig, RecorderSpec, ReplayPolicy, SweepJob};
    let jobs: Vec<SweepJob> = [
        "fft", "radix", "barnes", "lu", "fft", "radix", "barnes", "lu",
    ]
    .iter()
    .enumerate()
    .map(|(i, name)| {
        let w = bench_workload(name);
        SweepJob::from_specs(
            format!("{name}#{i}"),
            w.programs,
            w.initial_mem,
            MachineConfig::splash_default(2),
            &RecorderSpec::paper_matrix(),
            ReplayPolicy::Skip,
        )
    })
    .collect();
    for workers in [1usize, 2, 4, 8] {
        c.bench_with_input(
            BenchmarkId::new("sweep_8_jobs", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(run_sweep(&jobs, workers).expect("sweep succeeds"))),
        );
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = components;
    config = config();
    targets = bench_hash, bench_signature, bench_snoop_table,
        bench_recorder_event_path, bench_log_codec, bench_patching,
        bench_interpreter, bench_record_and_replay, bench_sweep_workers
}
criterion_main!(components);
