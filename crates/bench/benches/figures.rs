//! One bench per paper table/figure: each times the scaled-down pipeline
//! that regenerates that figure's data (2 threads, size 1 — the full-scale
//! tables come from the `rr-experiments` binaries) and prints the
//! resulting rows once so `cargo bench` output doubles as a smoke-test of
//! every experiment.

use std::sync::OnceLock;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rr_experiments::{figures, run_suite, runner::run_scalability, ExperimentConfig};
use rr_replay::CostModel;
use rr_sim::MachineConfig;

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig {
        threads: 2,
        size: 1,
        cost: CostModel::splash_default(),
        replay: true,
        workers: 0,
        ..ExperimentConfig::paper_default()
    }
}

/// The suite is recorded once and shared by the per-figure benches (the
/// benches then time the figure computation itself plus one fresh
/// recording for the recording-bound figures).
fn shared_runs() -> &'static Vec<rr_experiments::WorkloadRun> {
    static RUNS: OnceLock<Vec<rr_experiments::WorkloadRun>> = OnceLock::new();
    RUNS.get_or_init(|| run_suite(&small_cfg()).expect("bench suite records"))
}

fn bench_table1(c: &mut Criterion) {
    let cfg = MachineConfig::splash_default(2);
    let t = figures::table1(&cfg);
    t.print();
    c.bench_function("table1", |b| b.iter(|| black_box(figures::table1(&cfg))));
}

fn bench_fig01(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig01(runs).print();
    c.bench_function("fig01_ooo_fraction", |b| {
        b.iter(|| black_box(figures::fig01(runs)))
    });
}

fn bench_fig09(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig09(runs).print();
    c.bench_function("fig09_reordered", |b| {
        b.iter(|| black_box(figures::fig09(runs)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig10(runs).print();
    c.bench_function("fig10_inorder_blocks", |b| {
        b.iter(|| black_box(figures::fig10(runs)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig11(runs).print();
    c.bench_function("fig11_log_size", |b| {
        b.iter(|| black_box(figures::fig11(runs)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig12(runs).print();
    c.bench_function("fig12_traq", |b| b.iter(|| black_box(figures::fig12(runs))));
}

fn bench_fig13(c: &mut Criterion) {
    let runs = shared_runs();
    figures::fig13(runs).print();
    c.bench_function("fig13_replay", |b| {
        b.iter(|| black_box(figures::fig13(runs)))
    });
}

fn bench_fig14(c: &mut Criterion) {
    // The scalability sweep re-records at several core counts; bench the
    // whole pipeline at a tiny scale.
    let cfg = ExperimentConfig {
        replay: false,
        ..small_cfg()
    };
    let results = run_scalability(&cfg, &[2, 4]).expect("scalability sweep");
    figures::fig14(&results).print();
    c.bench_function("fig14_scalability_pipeline", |b| {
        b.iter(|| {
            let results = run_scalability(&cfg, &[2]).expect("scalability sweep");
            black_box(figures::fig14(&results))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = figures_group;
    config = config();
    targets = bench_table1, bench_fig01, bench_fig09, bench_fig10,
        bench_fig11, bench_fig12, bench_fig13, bench_fig14
}
criterion_main!(figures_group);
