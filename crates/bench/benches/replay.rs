//! Replay-engine throughput benches — the evidence behind the
//! interval-DAG refactor: one IR ([`rr_replay::IntervalDag`]), three
//! executors, true multithreaded replay.
//!
//! This bench owns its harness (the vendored criterion shim has no CLI or
//! machine-readable output): it records small/medium/large workloads,
//! times the sequential DAG executor and the multithreaded engine at
//! 1/2/4/8 workers, writes the results as `BENCH_replay.json`, and — on
//! every invocation — runs the differential gate: the sequential DAG
//! executor must agree with the retained legacy `replay_reference` path,
//! and the threaded engine at every worker count must agree with the
//! sequential executor and verify against the recorded ground truth. Any
//! disagreement exits nonzero (the CI `replay-scaling` gate).
//!
//! Wall-clock scaling tracks the host's real core count; the JSON records
//! `host_cpus` so a 1-cpu CI runner's flat curve reads as what it is.
//!
//! ```text
//! cargo bench -p rr-bench --bench replay            full measurement
//! cargo bench -p rr-bench --bench replay -- --test  CI smoke (fast, same JSON)
//! cargo bench -p rr-bench --bench replay -- --out path/to.json
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rr_replay::{
    patch, replay, replay_reference, replay_threaded, verify, CostModel, PatchedLog, ReplayOp,
    ReplayOutcome,
};
use rr_sim::{MachineConfig, RecordSession, RecorderSpec};

/// The worker counts the threaded engine is timed at.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

struct Case {
    tag: &'static str,
    workload: &'static str,
    threads: usize,
    size: u32,
}

const FULL_CASES: &[Case] = &[
    Case {
        tag: "small",
        workload: "fft",
        threads: 2,
        size: 1,
    },
    Case {
        tag: "medium",
        workload: "fft",
        threads: 4,
        size: 4,
    },
    Case {
        tag: "large",
        workload: "barnes",
        threads: 8,
        size: 6,
    },
];

const SMOKE_CASES: &[Case] = &[
    Case {
        tag: "small",
        workload: "fft",
        threads: 2,
        size: 1,
    },
    Case {
        tag: "medium",
        workload: "fft",
        threads: 4,
        size: 2,
    },
];

/// One recorded workload, ready to replay over and over.
struct Recording {
    tag: &'static str,
    programs: Vec<rr_isa::Program>,
    initial_mem: rr_isa::MemImage,
    patched: Vec<PatchedLog>,
    ordering: Vec<relaxreplay::IntervalOrdering>,
    recorded: rr_replay::RecordedExecution,
    intervals: usize,
    ops: usize,
}

fn record_case(case: &Case) -> Result<Recording, String> {
    let w = rr_workloads::by_name(case.workload, case.threads, case.size)
        .ok_or_else(|| format!("{}: unknown workload {:?}", case.tag, case.workload))?;
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&MachineConfig::splash_default(case.threads))
        .specs(&specs)
        .run()
        .map_err(|e| format!("{}: recording: {e}", case.tag))?;
    let v = &result.variants[0];
    let patched: Vec<PatchedLog> = v
        .logs
        .iter()
        .map(patch)
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: patch: {e}", case.tag))?;
    let intervals = patched
        .iter()
        .flat_map(|p| &p.ops)
        .filter(|op| matches!(op, ReplayOp::EndInterval { .. }))
        .count();
    let ops = patched.iter().map(|p| p.ops.len()).sum();
    Ok(Recording {
        tag: case.tag,
        programs: w.programs,
        initial_mem: w.initial_mem,
        patched,
        ordering: v.ordering.clone(),
        recorded: result.recorded,
        intervals,
        ops,
    })
}

/// The differential gate: sequential-vs-legacy and threaded-vs-sequential
/// agreement on one recording, every outcome verified against ground
/// truth. Returns the sequential outcome for reuse.
fn differential_gate(r: &Recording) -> Result<ReplayOutcome, String> {
    let cost = CostModel::splash_default();
    let seq = replay(&r.programs, &r.patched, r.initial_mem.clone(), &cost)
        .map_err(|e| format!("{}: sequential replay: {e}", r.tag))?;
    verify(&r.recorded, &seq).map_err(|e| format!("{}: sequential verify: {e}", r.tag))?;

    let legacy = replay_reference(&r.programs, &r.patched, r.initial_mem.clone(), &cost)
        .map_err(|e| format!("{}: legacy replay: {e}", r.tag))?;
    if seq.load_traces != legacy.load_traces
        || seq.events != legacy.events
        || seq.user_cycles != legacy.user_cycles
        || seq.os_cycles != legacy.os_cycles
    {
        return Err(format!(
            "{}: DAG executor disagrees with the legacy reference path",
            r.tag
        ));
    }
    verify(&r.recorded, &legacy).map_err(|e| format!("{}: legacy verify: {e}", r.tag))?;

    for workers in WORKERS {
        let thr = replay_threaded(
            &r.programs,
            &r.patched,
            &r.ordering,
            r.initial_mem.clone(),
            &cost,
            workers,
        )
        .map_err(|e| format!("{}: threaded replay (w={workers}): {e}", r.tag))?;
        verify(&r.recorded, &thr)
            .map_err(|e| format!("{}: threaded verify (w={workers}): {e}", r.tag))?;
        if thr.load_traces != seq.load_traces || thr.events != seq.events {
            return Err(format!(
                "{}: threaded engine (w={workers}) diverges from the sequential executor",
                r.tag
            ));
        }
    }
    Ok(seq)
}

struct Sample {
    name: String,
    intervals: usize,
    ops: usize,
    median_ns: f64,
    m_intervals_per_s: f64,
}

/// Times `f` and returns the median per-iteration nanoseconds. In smoke
/// mode everything runs once or twice — enough to prove the path works,
/// not to measure it.
fn measure<F: FnMut()>(smoke: bool, mut f: F) -> f64 {
    let t = Instant::now();
    f();
    let one = t.elapsed().as_secs_f64().max(1e-9);
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_nanos() as f64;
    }
    // ~0.2 s per sample, 7 samples, at least 1 iter per sample.
    let iters = ((0.2 / one).ceil() as u64).clamp(1, 1_000_000);
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn push_sample(out: &mut Vec<Sample>, name: String, intervals: usize, ops: usize, median_ns: f64) {
    let m_intervals_per_s = intervals as f64 / median_ns * 1e9 / 1e6;
    println!(
        "{name:<28} {median_ns:>12.0} ns/iter  {m_intervals_per_s:>9.3} M intervals/s  ({ops} ops)"
    );
    out.push(Sample {
        name,
        intervals,
        ops,
        median_ns,
        m_intervals_per_s,
    });
}

fn bench_recording(smoke: bool, r: &Recording, out: &mut Vec<Sample>) {
    let cost = CostModel::splash_default();
    let ns = measure(smoke, || {
        std::hint::black_box(
            replay(
                std::hint::black_box(&r.programs),
                &r.patched,
                r.initial_mem.clone(),
                &cost,
            )
            .expect("replays"),
        );
    });
    push_sample(out, format!("seq/{}", r.tag), r.intervals, r.ops, ns);
    for workers in WORKERS {
        let ns = measure(smoke, || {
            std::hint::black_box(
                replay_threaded(
                    std::hint::black_box(&r.programs),
                    &r.patched,
                    &r.ordering,
                    r.initial_mem.clone(),
                    &cost,
                    workers,
                )
                .expect("replays"),
            );
        });
        push_sample(
            out,
            format!("thr{workers}/{}", r.tag),
            r.intervals,
            r.ops,
            ns,
        );
    }
}

fn write_json(path: &Path, mode: &str, samples: &[Sample], cases: usize) -> std::io::Result<()> {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"rr-bench/replay/v1\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!(
        "  \"differential_gate\": {{ \"cases\": {cases}, \"workers\": [1, 2, 4, 8], \"ok\": true }},\n"
    ));
    s.push_str("  \"benches\": [\n");
    for (i, b) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"intervals\": {}, \"ops\": {}, \"median_ns\": {:.0}, \"m_intervals_per_s\": {:.3} }}{}\n",
            b.name,
            b.intervals,
            b.ops,
            b.median_ns,
            b.m_intervals_per_s,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test" | "--smoke" => smoke = true,
            "--out" => out_path = it.next().map(PathBuf::from),
            "--bench" => {} // cargo bench passes this through
            other => {
                // Ignore filters (cargo bench -- <filter> conventions).
                eprintln!("replay bench: ignoring argument {other:?}");
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_replay.json")
    });

    let cases = if smoke { SMOKE_CASES } else { FULL_CASES };
    let mut samples = Vec::new();
    for case in cases {
        let r = match record_case(case) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = differential_gate(&r) {
            eprintln!("replay bench: DIFFERENTIAL GATE FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "differential gate: {} ({} intervals) — legacy, sequential, and thr1/2/4/8 agree",
            r.tag, r.intervals
        );
        bench_recording(smoke, &r, &mut samples);
    }

    let mode = if smoke { "test" } else { "full" };
    if let Err(e) = write_json(&out_path, mode, &samples, cases.len()) {
        eprintln!("replay bench: writing {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("results written to {}", out_path.display());
    ExitCode::SUCCESS
}
