//! Recording-throughput benches under swept design parameters: how much
//! simulated work per second each recorder configuration sustains, and the
//! cost of the design choices DESIGN.md calls out (Base vs Opt, snoopy vs
//! directory, interval sizes, number of attached recorder variants).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use relaxreplay::Design;
use rr_bench::bench_workload;
use rr_sim::{MachineConfig, RecordSession, RecorderSpec};

fn bench_design_and_interval(c: &mut Criterion) {
    let w = bench_workload("barnes");
    let cfg = MachineConfig::splash_default(2);
    let mut group = c.benchmark_group("record_by_variant");
    for (label, spec) in [
        (
            "base_4k",
            RecorderSpec {
                design: Design::Base,
                max_interval: Some(4096),
            },
        ),
        (
            "opt_4k",
            RecorderSpec {
                design: Design::Opt,
                max_interval: Some(4096),
            },
        ),
        (
            "base_inf",
            RecorderSpec {
                design: Design::Base,
                max_interval: None,
            },
        ),
        (
            "opt_inf",
            RecorderSpec {
                design: Design::Opt,
                max_interval: None,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| {
                black_box(
                    RecordSession::new(&w.programs, &w.initial_mem)
                        .config(&cfg)
                        .specs(std::slice::from_ref(spec))
                        .run()
                        .expect("records"),
                )
            })
        });
    }
    group.finish();
}

fn bench_coherence_mode(c: &mut Criterion) {
    let w = bench_workload("ocean");
    let specs = vec![RecorderSpec {
        design: Design::Opt,
        max_interval: Some(4096),
    }];
    let mut group = c.benchmark_group("record_by_coherence");
    let snoopy = MachineConfig::splash_default(2);
    let directory = MachineConfig::splash_default(2).with_directory();
    for (label, cfg) in [("snoopy", &snoopy), ("directory", &directory)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    RecordSession::new(&w.programs, &w.initial_mem)
                        .config(cfg)
                        .specs(&specs)
                        .run()
                        .expect("records"),
                )
            })
        });
    }
    group.finish();
}

fn bench_attached_variants(c: &mut Criterion) {
    // Cost of observing one execution with 0/1/4 recorders attached —
    // recorders are passive, so this measures pure observer overhead.
    let w = bench_workload("fft");
    let cfg = MachineConfig::splash_default(2);
    let mut group = c.benchmark_group("record_by_recorder_count");
    for n in [0usize, 1, 4] {
        let specs: Vec<RecorderSpec> = RecorderSpec::paper_matrix().into_iter().take(n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &specs, |b, specs| {
            b.iter(|| {
                black_box(
                    RecordSession::new(&w.programs, &w.initial_mem)
                        .config(&cfg)
                        .specs(specs)
                        .run()
                        .expect("records"),
                )
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = ablation;
    config = config();
    targets = bench_design_and_interval, bench_coherence_mode, bench_attached_variants
}
criterion_main!(ablation);
