//! # rr-bench — benchmark support for the RelaxReplay reproduction
//!
//! The Criterion benches live in `benches/`:
//!
//! * `components` — microbenchmarks of every RelaxReplay hardware
//!   structure (H3 hashing, Bloom signatures, Snoop Table, TRAQ, log
//!   codec, patching, replay and simulation throughput);
//! * `figures` — one bench per paper table/figure, timing a scaled-down
//!   version of the experiment that regenerates it (the full-scale tables
//!   come from the `rr-experiments` binaries);
//! * `ablation` — recording throughput under swept hardware parameters
//!   (Base vs Opt, snoopy vs directory, interval sizes).
//!
//! This library crate hosts shared setup helpers plus the
//! bench-trajectory comparison logic ([`compare`]) behind the `rr-bench`
//! binary's `compare` subcommand.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;

use rr_isa::MemImage;
use rr_sim::{MachineConfig, RecordSession, RecorderSpec, RunResult};
use rr_workloads::{by_name, Workload};

/// A small, deterministic workload used by the benches (2 threads, size 1
/// — a few tens of thousands of instructions).
#[must_use]
pub fn bench_workload(name: &str) -> Workload {
    by_name(name, 2, 1).expect("known workload name")
}

/// Records `workload` on a small machine with the paper's four recorder
/// variants attached; panics on any simulation error.
#[must_use]
pub fn bench_record(workload: &Workload) -> RunResult {
    let cfg = MachineConfig::splash_default(workload.programs.len());
    RecordSession::new(&workload.programs, &workload.initial_mem)
        .config(&cfg)
        .specs(&RecorderSpec::paper_matrix())
        .run()
        .expect("bench recording")
}

/// An empty initial memory (helper so benches avoid the import).
#[must_use]
pub fn empty_mem() -> MemImage {
    MemImage::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_works() {
        let w = bench_workload("fft");
        let r = bench_record(&w);
        assert!(r.total_instrs() > 0);
        assert_eq!(r.variants.len(), 4);
    }
}
