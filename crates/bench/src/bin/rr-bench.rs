//! `rr-bench` — the bench-trajectory gate.
//!
//! The measurement harnesses live in `benches/` (`cargo bench -p rr-bench
//! --bench codec -- --out BENCH_codec.json`); this binary judges their
//! output over time:
//!
//! ```text
//! rr-bench compare OLD.json NEW.json [--threshold PCT]
//!                  [--threshold NAME=PCT]... [--warn-only]
//! ```
//!
//! Exit status: `0` clean (or `--warn-only`), `1` regression detected,
//! `2` usage or unreadable/unparseable input.

use std::process::ExitCode;

use rr_bench::compare::{compare, parse_bench_json, BenchDoc, Thresholds};
use rr_experiments::report::Table;

const USAGE: &str = "\
usage: rr-bench compare <old.json> <new.json> [options]

Compares two bench result files (any rr-bench/* schema) and exits
nonzero if any bench's new median exceeds its regression threshold.

options:
  --threshold PCT        default allowed slowdown in percent (default 50)
  --threshold NAME=PCT   per-bench override (repeatable)
  --warn-only            report regressions but exit 0 (shared CI runners)
";

fn load(path: &str) -> Result<BenchDoc, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_bench_json(&s).map_err(|e| format!("{path}: {e}"))
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let spec = if let Some(v) = arg.strip_prefix("--threshold=") {
            Some(v.to_string())
        } else if arg == "--threshold" {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("rr-bench: --threshold needs a value");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--warn-only" {
            warn_only = true;
            None
        } else if arg.starts_with('-') {
            eprintln!("rr-bench: unknown option {arg}\n{USAGE}");
            return ExitCode::from(2);
        } else {
            files.push(arg.clone());
            None
        };
        if let Some(spec) = spec {
            let parsed = match spec.split_once('=') {
                Some((name, pct)) => pct.parse::<f64>().map(|p| (Some(name.to_string()), p)),
                None => spec.parse::<f64>().map(|p| (None, p)),
            };
            match parsed {
                Ok((Some(name), pct)) => thresholds.per_bench.push((name, pct)),
                Ok((None, pct)) => thresholds.default_pct = pct,
                Err(_) => {
                    eprintln!("rr-bench: bad threshold {spec:?} (want PCT or NAME=PCT)");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("rr-bench: {e}");
            return ExitCode::from(2);
        }
    };
    if old.schema != new.schema {
        eprintln!(
            "rr-bench: note: comparing across schemas ({} vs {})",
            old.schema, new.schema
        );
    }
    let cmp = compare(&old, &new, &thresholds);
    if let Some((a, b)) = &cmp.mode_mismatch {
        eprintln!("rr-bench: warning: mode mismatch (old {a:?} vs new {b:?}) — medians are not comparable");
    }

    let mut t = Table::new(
        &format!("bench trajectory: {old_path} -> {new_path}"),
        &["bench", "old ns", "new ns", "delta", "threshold", "verdict"],
    );
    for d in &cmp.deltas {
        t.row(vec![
            d.name.clone(),
            d.old_ns.to_string(),
            d.new_ns.to_string(),
            format!("{:+.1}%", d.delta_pct),
            format!("{:.0}%", d.threshold_pct),
            if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    print!("{}", t.render());
    for name in &cmp.added {
        println!("  new bench (no baseline): {name}");
    }
    for name in &cmp.removed {
        println!("  bench disappeared: {name}");
    }

    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!("no regressions ({} benches compared)", cmp.deltas.len());
        return ExitCode::SUCCESS;
    }
    println!(
        "{} regression(s): {}",
        regressions.len(),
        regressions.join(", ")
    );
    if warn_only {
        println!("(--warn-only: exiting 0)");
        return ExitCode::SUCCESS;
    }
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(cmd) => {
            eprintln!("rr-bench: unknown command {cmd:?}\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
