//! Bench-trajectory comparison: parse two `BENCH_*.json` documents and
//! judge the new one against the old under per-bench regression
//! thresholds.
//!
//! The `rr-bench` binary (`rr-bench compare old.json new.json`) drives
//! this from the CLI and from CI; the logic lives here so the gate is
//! unit-testable without spawning processes. Any schema the bench
//! harnesses emit (`rr-bench/codec/v*`, `rr-bench/replay/v*`) parses, as
//! long as it carries a `benches` array of `{name, median_ns}` rows.

use relaxreplay::trace::json::{self, Value};

/// One parsed bench row: the stable bench name and its median time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRow {
    /// Stable bench name (`decode_chunked/10m`, `thr4/large`, …).
    pub name: String,
    /// Median wall-clock nanoseconds.
    pub median_ns: u64,
}

/// A parsed `BENCH_*.json` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchDoc {
    /// Schema marker (`rr-bench/codec/v2`, …).
    pub schema: String,
    /// Measurement mode (`full` / `smoke`), when recorded.
    pub mode: Option<String>,
    /// Host CPU count, when recorded.
    pub host_cpus: Option<u64>,
    /// The bench rows, in document order.
    pub rows: Vec<BenchRow>,
}

impl BenchDoc {
    /// Finds a row by name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Parses a `BENCH_*.json` document.
///
/// # Errors
///
/// Returns a description of the first structural problem: not JSON, no
/// schema marker, no `benches` array, or a row without a string `name`
/// and numeric `median_ns`.
pub fn parse_bench_json(s: &str) -> Result<BenchDoc, String> {
    let v = json::parse(s)?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\"")?
        .to_string();
    let mode = v
        .get("mode")
        .and_then(Value::as_str)
        .map(ToString::to_string);
    let host_cpus = v.get("host_cpus").and_then(Value::as_u64);
    let benches = v
        .get("benches")
        .and_then(Value::as_array)
        .ok_or("missing \"benches\" array")?;
    let mut rows = Vec::with_capacity(benches.len());
    for (i, b) in benches.iter().enumerate() {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("bench {i}: missing string \"name\""))?;
        let median_ns = b
            .get("median_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("bench {name:?}: missing numeric \"median_ns\""))?;
        rows.push(BenchRow {
            name: name.to_string(),
            median_ns,
        });
    }
    Ok(BenchDoc {
        schema,
        mode,
        host_cpus,
        rows,
    })
}

/// Regression thresholds: a default slowdown percentage plus per-bench
/// overrides (first matching override wins).
#[derive(Clone, Debug)]
pub struct Thresholds {
    /// Allowed slowdown in percent when no override matches.
    pub default_pct: f64,
    /// `(bench name, allowed slowdown %)` overrides.
    pub per_bench: Vec<(String, f64)>,
}

impl Default for Thresholds {
    /// 50% — deliberately loose, sized for shared CI runners where
    /// scheduling noise alone moves medians by tens of percent. Tighten
    /// per bench (or via `--threshold`) on quiet hardware.
    fn default() -> Self {
        Thresholds {
            default_pct: 50.0,
            per_bench: Vec::new(),
        }
    }
}

impl Thresholds {
    /// The threshold applying to `name`.
    #[must_use]
    pub fn for_bench(&self, name: &str) -> f64 {
        self.per_bench
            .iter()
            .find(|(n, _)| n == name)
            .map_or(self.default_pct, |(_, pct)| *pct)
    }
}

/// The judged delta of one bench present in both documents.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Bench name.
    pub name: String,
    /// Old median, ns.
    pub old_ns: u64,
    /// New median, ns.
    pub new_ns: u64,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
    /// Threshold applied, percent.
    pub threshold_pct: f64,
    /// Whether the slowdown exceeds the threshold.
    pub regressed: bool,
}

/// The full comparison of two bench documents.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Deltas for benches present in both documents, in old-document
    /// order.
    pub deltas: Vec<Delta>,
    /// Bench names only in the new document.
    pub added: Vec<String>,
    /// Bench names only in the old document (coverage loss — reported,
    /// not a regression by itself).
    pub removed: Vec<String>,
    /// Set when the documents' modes differ (`full` vs `smoke`): medians
    /// are not comparable across modes, so regressions are judged but
    /// should be read with suspicion.
    pub mode_mismatch: Option<(String, String)>,
}

impl Comparison {
    /// Names of the regressed benches.
    #[must_use]
    pub fn regressions(&self) -> Vec<&str> {
        self.deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.name.as_str())
            .collect()
    }
}

/// Compares `new` against `old`: a bench regresses when its new median
/// exceeds the old by more than its threshold
/// (`new > old × (1 + pct/100)`).
#[must_use]
pub fn compare(old: &BenchDoc, new: &BenchDoc, thresholds: &Thresholds) -> Comparison {
    let mut cmp = Comparison {
        mode_mismatch: match (&old.mode, &new.mode) {
            (Some(a), Some(b)) if a != b => Some((a.clone(), b.clone())),
            _ => None,
        },
        ..Comparison::default()
    };
    for row in &old.rows {
        let Some(new_row) = new.row(&row.name) else {
            cmp.removed.push(row.name.clone());
            continue;
        };
        let threshold_pct = thresholds.for_bench(&row.name);
        let delta_pct = if row.median_ns == 0 {
            0.0
        } else {
            (new_row.median_ns as f64 - row.median_ns as f64) / row.median_ns as f64 * 100.0
        };
        // Integer-exact regression test; the float percentage is display
        // only.
        let limit = row.median_ns as f64 * (1.0 + threshold_pct / 100.0);
        cmp.deltas.push(Delta {
            name: row.name.clone(),
            old_ns: row.median_ns,
            new_ns: new_row.median_ns,
            delta_pct,
            threshold_pct,
            regressed: new_row.median_ns as f64 > limit,
        });
    }
    for row in &new.rows {
        if old.row(&row.name).is_none() {
            cmp.added.push(row.name.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(mode: &str, rows: &[(&str, u64)]) -> BenchDoc {
        BenchDoc {
            schema: "rr-bench/test/v1".into(),
            mode: Some(mode.into()),
            host_cpus: Some(4),
            rows: rows
                .iter()
                .map(|&(name, median_ns)| BenchRow {
                    name: name.into(),
                    median_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_checked_in_shape() {
        let s = r#"{
            "schema": "rr-bench/codec/v2",
            "mode": "full",
            "host_cpus": 2,
            "benches": [
                { "name": "decode_chunked/1k", "entries": 1000, "median_ns": 8713, "mb_per_s": 527.4 }
            ]
        }"#;
        let d = parse_bench_json(s).expect("parses");
        assert_eq!(d.schema, "rr-bench/codec/v2");
        assert_eq!(d.mode.as_deref(), Some("full"));
        assert_eq!(d.host_cpus, Some(2));
        assert_eq!(d.row("decode_chunked/1k").expect("row").median_ns, 8713);

        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json("{\"schema\":\"x\"}").is_err());
        assert!(
            parse_bench_json("{\"schema\":\"x\",\"benches\":[{\"name\":\"a\"}]}").is_err(),
            "row without median_ns must fail"
        );
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let old = doc("full", &[("a", 1000), ("b", 1000), ("gone", 5)]);
        let new = doc("full", &[("a", 1400), ("b", 1600), ("fresh", 7)]);
        let cmp = compare(&old, &new, &Thresholds::default());
        assert_eq!(cmp.regressions(), vec!["b"], "40% ok, 60% regressed");
        assert_eq!(cmp.removed, vec!["gone"]);
        assert_eq!(cmp.added, vec!["fresh"]);
        assert!(cmp.mode_mismatch.is_none());
        let a = &cmp.deltas[0];
        assert!((a.delta_pct - 40.0).abs() < 1e-9, "{}", a.delta_pct);
    }

    #[test]
    fn per_bench_override_beats_default() {
        let old = doc("full", &[("hot", 1000), ("cold", 1000)]);
        let new = doc("full", &[("hot", 1100), ("cold", 1100)]);
        let thr = Thresholds {
            default_pct: 50.0,
            per_bench: vec![("hot".into(), 5.0)],
        };
        let cmp = compare(&old, &new, &thr);
        assert_eq!(cmp.regressions(), vec!["hot"]);
        assert!((thr.for_bench("hot") - 5.0).abs() < f64::EPSILON);
        assert!((thr.for_bench("cold") - 50.0).abs() < f64::EPSILON);
    }

    #[test]
    fn mode_mismatch_is_surfaced() {
        let old = doc("full", &[("a", 100)]);
        let new = doc("smoke", &[("a", 100)]);
        let cmp = compare(&old, &new, &Thresholds::default());
        assert_eq!(cmp.mode_mismatch, Some(("full".into(), "smoke".into())));
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let old = doc("full", &[("a", 1234), ("b", 0)]);
        let cmp = compare(&old, &old.clone(), &Thresholds::default());
        assert!(cmp.regressions().is_empty());
        assert!(cmp.added.is_empty() && cmp.removed.is_empty());
    }
}
