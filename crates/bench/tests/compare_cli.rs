//! Integration tests for `rr-bench compare`: the regression gate must
//! exit 0 on identical inputs, nonzero on an injected regression, and 0
//! again under `--warn-only` — the contract CI relies on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rr_bench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rr-bench"))
        .args(args)
        .output()
        .expect("rr-bench spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_bench_compare_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn bench_json(rows: &[(&str, u64)]) -> String {
    let mut s = String::from(
        "{\"schema\":\"rr-bench/codec/v2\",\"mode\":\"full\",\"host_cpus\":2,\"benches\":[",
    );
    for (i, (name, median)) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{name}\",\"entries\":1,\"bytes\":1,\"median_ns\":{median},\"mb_per_s\":1.0}}"
        ));
    }
    s.push_str("]}");
    s
}

#[test]
fn identical_files_pass_and_injected_regression_fails() {
    let root = temp_root("gate");
    let old = root.join("old.json");
    let new = root.join("new.json");
    std::fs::write(&old, bench_json(&[("decode/1k", 1000), ("encode/1k", 800)])).expect("writes");
    std::fs::write(&new, bench_json(&[("decode/1k", 1000), ("encode/1k", 800)])).expect("writes");

    let out = rr_bench(&["compare", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "identical files must pass: {out:?}");
    assert!(stdout(&out).contains("no regressions"), "{}", stdout(&out));

    // Inject a 3x regression on one bench: nonzero exit, named in output.
    std::fs::write(&new, bench_json(&[("decode/1k", 3000), ("encode/1k", 800)])).expect("writes");
    let out = rr_bench(&["compare", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let text = stdout(&out);
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("decode/1k"), "{text}");
    assert!(text.contains("+200.0%"), "{text}");

    // --warn-only reports it but exits 0.
    let out = rr_bench(&[
        "compare",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--warn-only",
    ]);
    assert!(out.status.success(), "--warn-only must exit 0");
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));
}

#[test]
fn thresholds_and_errors_are_honoured() {
    let root = temp_root("thr");
    let old = root.join("old.json");
    let new = root.join("new.json");
    std::fs::write(&old, bench_json(&[("a", 1000), ("b", 1000)])).expect("writes");
    std::fs::write(&new, bench_json(&[("a", 1300), ("b", 1300)])).expect("writes");

    // 30% slowdown passes the default 50% gate...
    let out = rr_bench(&["compare", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stdout(&out));
    // ...fails a global 10% gate...
    let out = rr_bench(&[
        "compare",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(1));
    // ...and a per-bench override gates only its bench.
    let out = rr_bench(&[
        "compare",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "a=10",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("1 regression(s): a"), "{text}");

    // Usage and input errors exit 2.
    assert_eq!(rr_bench(&["compare"]).status.code(), Some(2));
    assert_eq!(rr_bench(&[]).status.code(), Some(2));
    assert_eq!(rr_bench(&["frobnicate"]).status.code(), Some(2));
    let bad = root.join("bad.json");
    std::fs::write(&bad, "not json").expect("writes");
    let out = rr_bench(&["compare", old.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = rr_bench(&["compare", old.to_str().unwrap(), "/nonexistent.json"]);
    assert_eq!(out.status.code(), Some(2));
}

/// The checked-in baselines must stay parseable by the gate — comparing a
/// baseline against itself is the degenerate clean case CI exercises.
#[test]
fn checked_in_baselines_compare_cleanly_against_themselves() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for name in ["BENCH_codec.json", "BENCH_replay.json"] {
        let p = repo.join(name);
        assert!(p.is_file(), "{name} missing from repo root");
        let out = rr_bench(&["compare", p.to_str().unwrap(), p.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "{name} vs itself must pass: {}",
            stdout(&out)
        );
    }
}
