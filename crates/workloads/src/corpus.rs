//! The concurrent data-structure corpus: workloads shipped as `.asm` text
//! (see `crates/workloads/corpus/*.asm`) and assembled on demand with
//! [`rr_isa::asm`].
//!
//! These shapes — locks, a seqlock, a lock-free stack, an MPMC ring, a
//! work-stealing deque, epoch reclamation — are the access patterns that
//! actually stress relaxed-memory recording: contended RMWs, single-
//! writer/many-reader lines, publication via release fences, and racy
//! reads resolved by retry. Each file encodes its own correctness checks
//! (error-flag words the test harness asserts stay zero).
//!
//! Every shape's thread count is intrinsic to its `.asm` source (roles
//! are baked into the code), so there is no `threads`/`size` knob here.

use rr_isa::asm;

use crate::Workload;

/// Name → `.asm` source for every shipped corpus shape. The name always
/// matches the file's `.name` directive (asserted in tests).
pub const CORPUS_SOURCES: [(&str, &str); 7] = [
    ("spinlock", include_str!("../corpus/spinlock.asm")),
    ("ticket_lock", include_str!("../corpus/ticket_lock.asm")),
    ("seqlock", include_str!("../corpus/seqlock.asm")),
    ("treiber_stack", include_str!("../corpus/treiber_stack.asm")),
    ("mpmc_ring", include_str!("../corpus/mpmc_ring.asm")),
    ("ws_deque", include_str!("../corpus/ws_deque.asm")),
    ("rcu_epoch", include_str!("../corpus/rcu_epoch.asm")),
];

/// The names of all corpus shapes, in catalog order.
#[must_use]
pub fn corpus_names() -> Vec<&'static str> {
    CORPUS_SOURCES.iter().map(|&(n, _)| n).collect()
}

/// Returns the `.asm` source of a corpus shape, if `name` is one.
#[must_use]
pub fn corpus_source(name: &str) -> Option<&'static str> {
    CORPUS_SOURCES
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, src)| src)
}

/// Assembles one corpus shape by name.
///
/// # Panics
///
/// Panics if a shipped `.asm` file fails to assemble — that is a bug in
/// the corpus, and the diagnostics point at the offending line.
#[must_use]
pub fn corpus_by_name(name: &str) -> Option<Workload> {
    let (static_name, src) = CORPUS_SOURCES.iter().find(|&&(n, _)| n == name)?;
    let out = match asm::assemble(src) {
        Ok(out) => out,
        Err(e) => panic!("shipped corpus file `{name}.asm` does not assemble: {e}"),
    };
    Some(Workload {
        name: static_name,
        programs: out.programs,
        initial_mem: out.initial_mem,
    })
}

/// Assembles the whole corpus, in catalog order.
#[must_use]
pub fn corpus_suite() -> Vec<Workload> {
    corpus_names()
        .into_iter()
        .map(|n| corpus_by_name(n).expect("catalog name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::asm::assemble;

    #[test]
    fn every_corpus_file_assembles_and_names_match() {
        for &(name, src) in &CORPUS_SOURCES {
            let out = assemble(src).unwrap_or_else(|e| panic!("{name}.asm: {e}"));
            assert_eq!(
                out.name.as_deref(),
                Some(name),
                "`.name` directive of {name}.asm disagrees with the catalog"
            );
            assert!(
                out.programs.len() >= 2,
                "{name}.asm should be a multi-core workload"
            );
            for (i, p) in out.programs.iter().enumerate() {
                assert!(!p.is_empty(), "{name}.asm core {i} has no code");
            }
        }
    }

    #[test]
    fn corpus_suite_has_seven_unique_shapes() {
        let suite = corpus_suite();
        assert_eq!(suite.len(), 7);
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn corpus_by_name_rejects_unknowns() {
        assert!(corpus_by_name("nonesuch").is_none());
        assert!(corpus_source("nonesuch").is_none());
    }

    /// Runs a workload round-robin on the interpreter with the given
    /// per-turn quantum, panicking if it fails to terminate.
    fn run_interleaved(w: &Workload, quantum: u64) -> rr_isa::MemImage {
        let mut mem = w.initial_mem.clone();
        let mut interps: Vec<_> = w.programs.iter().map(rr_isa::Interp::new).collect();
        for _ in 0..2_000_000 {
            let mut all_done = true;
            for i in &mut interps {
                if !i.is_halted() {
                    all_done = false;
                    let _ = i.run(&mut mem, quantum);
                }
            }
            if all_done {
                return mem;
            }
        }
        panic!("{} did not terminate (quantum {quantum})", w.name);
    }

    /// Per-core error flags (torn seqlock reads, RCU poison reads) live
    /// at 0x300200 + tid*64 and must stay zero.
    fn assert_no_error_flags(name: &str, mem: &rr_isa::MemImage, cores: usize) {
        for tid in 0..cores {
            assert_eq!(
                mem.load(0x30_0200 + (tid as u64) * 64),
                0,
                "{name}: core {tid} raised its error flag"
            );
        }
    }

    #[test]
    fn corpus_algorithms_are_functionally_correct() {
        // Interleave at several quanta to vary the schedule; the cycle-
        // accurate machine exercises real reordering in the top-level
        // differential tests.
        for quantum in [1, 3, 7] {
            for w in corpus_suite() {
                let mem = run_interleaved(&w, quantum);
                let cores = w.programs.len();
                assert_no_error_flags(w.name, &mem, cores);
                match w.name {
                    // Both locks guard a counter: NCORES * N increments.
                    "spinlock" => assert_eq!(mem.load(0x10_0040), 4 * 12),
                    "ticket_lock" => assert_eq!(mem.load(0x10_0080), 4 * 10),
                    // Each core publishes its completed-iteration count.
                    "seqlock" => {
                        assert_eq!(mem.load(0x30_0000), 8, "writer rounds");
                        assert_eq!(mem.load(0x30_0000 + 64), 8, "reader 1 snapshots");
                        assert_eq!(mem.load(0x30_0000 + 128), 8, "reader 2 snapshots");
                    }
                    // Every pushed value is popped exactly once: the
                    // per-core sums add up to the sum of all values.
                    "treiber_stack" => {
                        let total: u64 = (0..4).map(|t| mem.load(0x30_0000 + t * 64)).sum();
                        let expect: u64 = (0..4u64)
                            .map(|t| (1..=6).map(|k| t * 100 + k).sum::<u64>())
                            .sum();
                        assert_eq!(total, expect);
                    }
                    // Consumers drain exactly what producers put in.
                    "mpmc_ring" => {
                        let consumed: u64 = (2..4).map(|t| mem.load(0x30_0000 + t * 64 + 8)).sum();
                        let expect: u64 = (0..16u64).map(|pos| 100 + 3 * pos).sum();
                        assert_eq!(consumed, expect);
                        for t in 0..4u64 {
                            assert_eq!(mem.load(0x30_0000 + t * 64), 8, "items per core");
                        }
                    }
                    // Every task obtained exactly once, values intact.
                    "ws_deque" => {
                        let count: u64 = (0..4).map(|t| mem.load(0x30_0000 + t * 64)).sum();
                        let sum: u64 = (0..4).map(|t| mem.load(0x30_0000 + t * 64 + 8)).sum();
                        assert_eq!(count, 10);
                        assert_eq!(sum, (0..10u64).map(|b| 10 + b).sum::<u64>());
                    }
                    "rcu_epoch" => {
                        assert_eq!(mem.load(0x30_0000), 5, "updater rounds");
                        for t in 1..4u64 {
                            assert_eq!(mem.load(0x30_0000 + t * 64), 10, "reads per reader");
                        }
                    }
                    other => panic!("no functional check for corpus shape {other}"),
                }
            }
        }
    }
}
