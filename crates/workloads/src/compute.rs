//! Private-compute kernels interleaved between communication events.
//!
//! Real SPLASH-2 applications spend thousands of instructions in purely
//! local computation between inter-processor communications; the recorder's
//! behaviour (interval lengths, reorder rates, log size) is governed by
//! that ratio. Every workload generator interleaves this kernel between its
//! sharing events to reproduce realistic communication density.

use rr_isa::{AluOp, BranchCond, ProgramBuilder, Reg};

/// Registers the local-compute kernel may clobber. Chosen high so workload
/// bodies can use `r1..=r14` freely (`r28..=r31` belong to the sync
/// emitters).
#[derive(Clone, Copy, Debug)]
pub struct LocalRegs {
    /// Base address of the private work area.
    pub base: Reg,
    /// Loop counter.
    pub i: Reg,
    /// Loop limit.
    pub lim: Reg,
    /// Address scratch.
    pub addr: Reg,
    /// Value scratch.
    pub v: Reg,
    /// Running accumulator; also drives the data-dependent access stream.
    pub acc: Reg,
}

impl LocalRegs {
    /// The default register assignment (`r15..=r20`).
    #[must_use]
    pub fn standard() -> Self {
        LocalRegs {
            base: Reg::new(15),
            i: Reg::new(16),
            lim: Reg::new(17),
            addr: Reg::new(18),
            v: Reg::new(19),
            acc: Reg::new(20),
        }
    }
}

/// Emits `iters` iterations (~15 instructions each: two loads, one store,
/// ALU) of a private compute kernel over a `words`-word private array at
/// `base_addr`.
///
/// The two loads use *independent*, index-derived strided addresses, so
/// consecutive iterations' loads overlap in the ROB — misses overlap with
/// younger hits and the store stream, producing the heavily out-of-order
/// perform behaviour Figure 1 of the paper measures, with zero sharing.
///
/// # Panics
///
/// Panics if `words` is not a power of two.
pub fn emit_local_work(
    b: &mut ProgramBuilder,
    regs: &LocalRegs,
    base_addr: i64,
    words: i64,
    iters: i64,
) {
    assert!(
        words > 0 && (words & (words - 1)) == 0,
        "words must be a power of two"
    );
    let LocalRegs {
        base,
        i,
        lim,
        addr,
        v,
        acc,
    } = *regs;
    b.load_imm(base, base_addr);
    b.load_imm(i, 0);
    b.load_imm(lim, iters);
    let top = b.bind_new();
    // Strided load #1 (independent address: derived from i only).
    b.op_imm(AluOp::Mul, addr, i, 7);
    b.op_imm(AluOp::And, addr, addr, words - 1);
    b.op_imm(AluOp::Shl, addr, addr, 3);
    b.add(addr, base, addr);
    b.load(v, addr, 0);
    b.add(acc, acc, v);
    // Strided load #2 (different stride, also independent).
    b.op_imm(AluOp::Mul, addr, i, 13);
    b.op_imm(AluOp::Xor, addr, addr, 0x55);
    b.op_imm(AluOp::And, addr, addr, words - 1);
    b.op_imm(AluOp::Shl, addr, addr, 3);
    b.add(addr, base, addr);
    b.load(v, addr, 0);
    b.op_imm(AluOp::Xor, acc, acc, 0x1f);
    b.add(acc, acc, v);
    // Streaming store.
    b.op_imm(AluOp::And, addr, i, words - 1);
    b.op_imm(AluOp::Shl, addr, addr, 3);
    b.add(addr, base, addr);
    b.store(acc, addr, 0);
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, lim, top);
}

/// Approximate dynamic instruction count of [`emit_local_work`] with the
/// given iteration count (for sizing workloads).
#[must_use]
pub fn local_work_instrs(iters: i64) -> i64 {
    3 + iters * 21
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::{Interp, MemImage, StopReason};

    #[test]
    fn kernel_terminates_and_touches_private_memory() {
        let mut b = ProgramBuilder::new();
        emit_local_work(&mut b, &LocalRegs::standard(), 0x9000, 64, 50);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        assert_eq!(interp.run(&mut mem, 100_000), StopReason::Halted);
        let touched = mem.iter().filter(|&(_, v)| v != 0).count();
        assert!(touched > 10, "only {touched} words written");
    }

    #[test]
    fn instruction_estimate_is_close() {
        let mut b = ProgramBuilder::new();
        emit_local_work(&mut b, &LocalRegs::standard(), 0x9000, 64, 80);
        b.halt();
        let p = b.build();
        let mut mem = MemImage::new();
        let mut interp = Interp::new(&p);
        interp.run(&mut mem, 1_000_000);
        let actual = interp.retired() as i64 - 1; // minus halt
        let estimate = local_work_instrs(80);
        assert!(
            (actual - estimate).abs() <= estimate / 10,
            "estimate {estimate} vs actual {actual}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut b = ProgramBuilder::new();
        emit_local_work(&mut b, &LocalRegs::standard(), 0, 100, 1);
    }
}
