//! Grid and molecular-dynamics analogues: `ocean`, `water_nsq`,
//! `water_sp`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rr_isa::{AluOp, BranchCond, MemImage, ProgramBuilder, Reg};

use crate::compute::{emit_local_work, LocalRegs};
use crate::layout;
use crate::sync::{emit_barrier, emit_lock_acquire, emit_lock_release};
use crate::Workload;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Words in each thread's private compute area.
const LOCAL_WORDS: i64 = 8192;

fn local_base(tid: usize) -> i64 {
    layout::private_base(tid) + 0x8_0000
}

/// OCEAN analogue: a red/black-style grid sweep. Each thread owns a band of
/// rows; every sweep reads the neighbouring threads' boundary rows (the
/// nearest-neighbour communication of the real OCEAN) and ping-pongs
/// between two grids with a barrier per sweep.
#[must_use]
pub fn ocean(threads: usize, size: u32) -> Workload {
    let rows_per_thread = 8i64;
    let row_words = 16i64;
    let sweeps = (3 * size) as i64;
    let n = threads as i64;
    let total_rows = n * rows_per_thread;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0x0cea);
    for w in 0..total_rows * row_words {
        initial_mem.store((layout::DATA_BASE + w * 8) as u64, rng.gen_range(1..1000));
    }
    let programs = (0..threads)
        .map(|tid| {
            let tid = tid as i64;
            let my_first = tid * rows_per_thread;
            let mut b = ProgramBuilder::new();
            let (bar, round, src, dst, sweep, nsweep) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (w, lim, addr, v, up, down, tmp) = (r(7), r(8), r(9), r(10), r(11), r(12), r(13));
            let local = LocalRegs::standard();
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(src, layout::DATA_BASE);
            b.load_imm(dst, layout::DATA2_BASE);
            b.load_imm(sweep, 0).load_imm(nsweep, sweeps);
            let sweep_top = b.bind_new();
            // The multigrid relaxation's private work between sweeps.
            emit_local_work(&mut b, &local, local_base(tid as usize), LOCAL_WORDS, 250);
            // For each word of my band: dst[w] = src[w] + src[w-row] + src[w+row]
            b.load_imm(w, my_first * row_words);
            b.load_imm(lim, (my_first + rows_per_thread) * row_words);
            let body = b.bind_new();
            b.op_imm(AluOp::Shl, addr, w, 3);
            b.add(tmp, src, addr);
            b.load(v, tmp, 0);
            // Neighbour above (wraps to the same word at the top edge):
            b.op_imm(AluOp::Sub, up, w, row_words);
            let up_ok = b.label();
            b.branch(BranchCond::Ge, up, Reg::ZERO, up_ok);
            b.op(AluOp::Add, up, w, Reg::ZERO);
            b.bind(up_ok);
            b.op_imm(AluOp::Shl, up, up, 3);
            b.add(up, src, up);
            b.load(up, up, 0);
            b.add(v, v, up);
            // Neighbour below (wraps at the bottom edge):
            b.op_imm(AluOp::Add, down, w, row_words);
            b.load_imm(tmp, total_rows * row_words);
            let down_ok = b.label();
            b.branch(BranchCond::Lt, down, tmp, down_ok);
            b.op(AluOp::Add, down, w, Reg::ZERO);
            b.bind(down_ok);
            b.op_imm(AluOp::Shl, down, down, 3);
            b.add(down, src, down);
            b.load(down, down, 0);
            b.add(v, v, down);
            b.op_imm(AluOp::Shr, v, v, 1);
            b.add(tmp, dst, addr);
            b.store(v, tmp, 0);
            b.add_imm(w, w, 1);
            b.branch(BranchCond::Lt, w, lim, body);
            emit_barrier(&mut b, bar, round, n);
            // Swap src/dst.
            b.op(AluOp::Add, tmp, src, Reg::ZERO);
            b.op(AluOp::Add, src, dst, Reg::ZERO);
            b.op(AluOp::Add, dst, tmp, Reg::ZERO);
            b.add_imm(sweep, sweep, 1);
            b.branch(BranchCond::Lt, sweep, nsweep, sweep_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "ocean",
        programs,
        initial_mem,
    }
}

/// WATER-NSQUARED analogue: all-pairs force computation. Each thread owns a
/// slice of molecules, reads *every* molecule each step (heavy shared
/// reading), writes only its own, and folds a partial sum into a
/// lock-protected global accumulator — the real WATER-NSQ's structure.
#[must_use]
pub fn water_nsq(threads: usize, size: u32) -> Workload {
    let mols_per_thread = 6i64;
    let mol_words = 4i64;
    let steps = (2 * size) as i64;
    let n = threads as i64;
    let total = n * mols_per_thread;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0x3a7e4);
    for w in 0..total * mol_words {
        initial_mem.store((layout::DATA_BASE + w * 8) as u64, rng.gen_range(1..100));
    }
    let programs = (0..threads)
        .map(|tid| {
            let tid = tid as i64;
            let mut b = ProgramBuilder::new();
            let (bar, round, mols, step, nstep, acc) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (m, mlim, j, jlim, addr, v, f, lock) =
                (r(7), r(8), r(9), r(10), r(11), r(12), r(13), r(14));
            let local = LocalRegs::standard();
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(mols, layout::DATA_BASE);
            b.load_imm(step, 0).load_imm(nstep, steps);
            let forces = layout::private_base(tid as usize) + 0x3000;
            let step_top = b.bind_new();
            // Intramolecular private computation.
            emit_local_work(&mut b, &local, local_base(tid as usize), LOCAL_WORDS, 200);
            b.load_imm(acc, 0);
            // Read phase: positions are stable (nobody writes molecules in
            // this phase — the real WATER's force/update separation). For
            // each of my molecules, sum a "force" over all molecules into a
            // private buffer.
            b.load_imm(m, 0);
            b.load_imm(mlim, mols_per_thread);
            let mol = b.bind_new();
            b.load_imm(f, 0);
            b.load_imm(j, 0);
            b.load_imm(jlim, total);
            let pair = b.bind_new();
            b.op_imm(AluOp::Mul, addr, j, mol_words * 8);
            b.add(addr, mols, addr);
            b.load(v, addr, 0); // read every molecule's position word
                                // The pairwise potential evaluation (ALU-heavy in real WATER).
            b.op_imm(AluOp::Mul, v, v, 0x9e37);
            b.op_imm(AluOp::Xor, v, v, 0x79b9);
            b.op_imm(AluOp::Shr, v, v, 3);
            b.op_imm(AluOp::Mul, v, v, 13);
            b.op_imm(AluOp::And, v, v, 0xffff);
            b.add(f, f, v);
            b.add_imm(j, j, 1);
            b.branch(BranchCond::Lt, j, jlim, pair);
            // Private force buffer write.
            b.op_imm(AluOp::Shl, addr, m, 3);
            b.op_imm(AluOp::Add, addr, addr, forces);
            b.store(f, addr, 0);
            b.add(acc, acc, f);
            b.add_imm(m, m, 1);
            b.branch(BranchCond::Lt, m, mlim, mol);
            emit_barrier(&mut b, bar, round, n);
            // Update phase: write only my own molecules.
            b.load_imm(m, 0);
            let upd = b.bind_new();
            b.op_imm(AluOp::Shl, addr, m, 3);
            b.op_imm(AluOp::Add, addr, addr, forces);
            b.load(f, addr, 0);
            b.op_imm(AluOp::Add, addr, m, tid * mols_per_thread);
            b.op_imm(AluOp::Mul, addr, addr, mol_words * 8);
            b.add(addr, mols, addr);
            b.load(v, addr, 0);
            b.add(v, v, f);
            b.op_imm(AluOp::And, v, v, 0xfffff);
            b.store(v, addr, 0); // position update
            b.store(f, addr, 8); // force word
            b.add_imm(m, m, 1);
            b.branch(BranchCond::Lt, m, mlim, upd);
            // Global potential-energy accumulator under a lock.
            b.load_imm(lock, layout::lock_addr(0));
            emit_lock_acquire(&mut b, lock);
            b.load_imm(addr, layout::HIST_BASE);
            b.load(v, addr, 0);
            b.add(v, v, acc);
            b.store(v, addr, 0);
            emit_lock_release(&mut b, lock);
            emit_barrier(&mut b, bar, round, n);
            b.add_imm(step, step, 1);
            b.branch(BranchCond::Lt, step, nstep, step_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "water_nsq",
        programs,
        initial_mem,
    }
}

/// WATER-SPATIAL analogue: molecules interact through *cells*. Each step a
/// thread atomically re-registers its molecules into cell counters, then
/// after a barrier reads its neighbouring cells' counters and updates its
/// molecules; a second barrier closes the step. More barriers and finer
/// atomic sharing than `water_nsq`.
#[must_use]
pub fn water_sp(threads: usize, size: u32) -> Workload {
    let mols_per_thread = 8i64;
    let cells = 8i64;
    let steps = (2 * size) as i64;
    let n = threads as i64;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0x3a7e5);
    for w in 0..n * mols_per_thread {
        initial_mem.store(
            (layout::DATA_BASE + w * 8) as u64,
            rng.gen_range(0..cells) as u64,
        );
    }
    let programs = (0..threads)
        .map(|tid| {
            let tid = tid as i64;
            let mut b = ProgramBuilder::new();
            let (bar, round, mols, cellbase, step, nstep) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (m, mlim, addr, cell, one, v, acc) = (r(7), r(8), r(9), r(10), r(11), r(12), r(13));
            let local = LocalRegs::standard();
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(mols, layout::DATA_BASE + tid * mols_per_thread * 8);
            b.load_imm(cellbase, layout::HIST_BASE);
            b.load_imm(one, 1);
            b.load_imm(step, 0).load_imm(nstep, steps);
            let step_top = b.bind_new();
            // Private intra-cell computation.
            emit_local_work(&mut b, &local, local_base(tid as usize), LOCAL_WORDS, 250);
            // Phase 1: register my molecules into their cells (cells are
            // spaced two lines apart so only same-cell traffic conflicts).
            b.load_imm(m, 0).load_imm(mlim, mols_per_thread);
            let reg_top = b.bind_new();
            b.op_imm(AluOp::Shl, addr, m, 3);
            b.add(addr, mols, addr);
            b.load(cell, addr, 0);
            b.op_imm(AluOp::And, cell, cell, cells - 1);
            b.op_imm(AluOp::Shl, cell, cell, 6);
            b.add(cell, cellbase, cell);
            b.fetch_add(v, cell, one);
            b.add_imm(m, m, 1);
            b.branch(BranchCond::Lt, m, mlim, reg_top);
            emit_barrier(&mut b, bar, round, n);
            // More private work before the read phase.
            emit_local_work(&mut b, &local, local_base(tid as usize), LOCAL_WORDS, 250);
            // Phase 2: read all cell counters, update my molecules.
            b.load_imm(acc, 0);
            b.load_imm(m, 0).load_imm(mlim, cells);
            let read_top = b.bind_new();
            b.op_imm(AluOp::Shl, addr, m, 6);
            b.add(addr, cellbase, addr);
            b.load(v, addr, 0);
            b.add(acc, acc, v);
            b.add_imm(m, m, 1);
            b.branch(BranchCond::Lt, m, mlim, read_top);
            b.load_imm(m, 0).load_imm(mlim, mols_per_thread);
            let upd_top = b.bind_new();
            b.op_imm(AluOp::Shl, addr, m, 3);
            b.add(addr, mols, addr);
            b.load(v, addr, 0);
            b.add(v, v, acc);
            b.op_imm(AluOp::And, v, v, (cells - 1) | 0xff00);
            b.op_imm(AluOp::And, cell, v, cells - 1);
            b.store(cell, addr, 0);
            b.add_imm(m, m, 1);
            b.branch(BranchCond::Lt, m, mlim, upd_top);
            emit_barrier(&mut b, bar, round, n);
            b.add_imm(step, step, 1);
            b.branch(BranchCond::Lt, step, nstep, step_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "water_sp",
        programs,
        initial_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_workloads_build() {
        for w in [ocean(4, 1), water_nsq(4, 1), water_sp(4, 1)] {
            assert_eq!(w.programs.len(), 4, "{}", w.name);
            for p in &w.programs {
                assert!(p.len() > 20, "{} program too small", w.name);
            }
        }
    }

    #[test]
    fn ocean_threads_share_boundaries() {
        // Thread 0's band reads row indices that belong to thread 1
        // (bottom neighbour wraps into the next band).
        let w = ocean(2, 1);
        assert!(!w.programs[0].is_empty());
        assert!(w.initial_mem.load(layout::DATA_BASE as u64) > 0);
    }
}
