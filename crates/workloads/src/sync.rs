//! Synchronization idioms emitted into workload programs: test-and-test-
//! and-set spinlocks and sense-free counting barriers, built from the ISA's
//! atomics and fences exactly the way the SPLASH-2 macros would be lowered
//! on a release-consistent machine.

use rr_isa::{BranchCond, FenceKind, ProgramBuilder, Reg};

/// Scratch registers reserved for the emitted synchronization sequences.
/// Workload bodies must not keep live values in `r27..=r31`.
pub const SCRATCH: [Reg; 4] = [Reg::new(28), Reg::new(29), Reg::new(30), Reg::new(31)];

/// Extra scratch register used by the backoff delay loops.
const DELAY: Reg = Reg::new(27);

/// ALU-loop iterations between polls of a contended location. Polling
/// without backoff floods the recorder with loads of the contended line
/// (every one of them invalidated before counting); real spinlocks and
/// barriers insert a pause for exactly this kind of reason.
const BACKOFF_ITERS: i64 = 24;

fn emit_backoff(b: &mut ProgramBuilder) {
    b.load_imm(DELAY, BACKOFF_ITERS);
    let top = b.bind_new();
    b.op_imm(rr_isa::AluOp::Sub, DELAY, DELAY, 1);
    b.branch(BranchCond::Ne, DELAY, Reg::ZERO, top);
}

/// Emits a test-and-test-and-set lock acquire (with backoff between polls)
/// on the lock word whose address is in `lock_addr`. Clobbers [`SCRATCH`]
/// and `r27`. The CAS provides the acquire semantics.
pub fn emit_lock_acquire(b: &mut ProgramBuilder, lock_addr: Reg) {
    let [tmp, zero, one, old] = SCRATCH;
    b.load_imm(zero, 0);
    b.load_imm(one, 1);
    let retry = b.bind_new();
    // Test: poll until the lock looks free, backing off between polls.
    let spin = b.label();
    let test = b.bind_new();
    b.load(tmp, lock_addr, 0);
    b.branch(BranchCond::Eq, tmp, zero, spin);
    emit_backoff(b);
    b.jump(test);
    b.bind(spin);
    // Test-and-set.
    b.cas(old, lock_addr, zero, one);
    b.branch(BranchCond::Ne, old, zero, retry);
}

/// Emits a lock release: a release fence followed by a plain store of 0.
/// Clobbers [`SCRATCH`]`[1]`.
pub fn emit_lock_release(b: &mut ProgramBuilder, lock_addr: Reg) {
    let zero = SCRATCH[1];
    b.load_imm(zero, 0);
    b.fence(FenceKind::Release);
    b.store(zero, lock_addr, 0);
}

/// Emits a counting barrier across `nthreads` threads, polling with
/// backoff.
///
/// `counter_addr` holds the address of the shared barrier counter;
/// `round` is a per-thread register that counts barrier episodes and must
/// be zero-initialized once and never otherwise touched. The counter only
/// grows, so the same barrier word can be reused any number of times.
/// Clobbers [`SCRATCH`] and `r27`.
pub fn emit_barrier(b: &mut ProgramBuilder, counter_addr: Reg, round: Reg, nthreads: i64) {
    let [tmp, one, target, old] = SCRATCH;
    b.load_imm(one, 1);
    // Everything I did must be visible before I announce arrival; the
    // atomic's release semantics cover this, but be explicit like real
    // barrier code.
    b.fence(FenceKind::Release);
    b.fetch_add(old, counter_addr, one);
    b.add_imm(round, round, 1);
    // target = round * nthreads
    b.op_imm(rr_isa::AluOp::Mul, target, round, nthreads);
    let done = b.label();
    let poll = b.bind_new();
    b.load(tmp, counter_addr, 0);
    b.branch(BranchCond::Geu, tmp, target, done);
    emit_backoff(b);
    b.jump(poll);
    b.bind(done);
    b.fence(FenceKind::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::{Interp, MemImage, Program};

    /// Round-robin interleaved interpretation of several threads — enough
    /// to check the emitted synchronization is functionally correct (the
    /// cycle-level machine exercises it under real reordering).
    fn run_interleaved(programs: &[Program], mem: &mut MemImage, quantum: u64) {
        let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
        for _ in 0..200_000 {
            let mut all_done = true;
            for interp in &mut interps {
                if !interp.is_halted() {
                    all_done = false;
                    let _ = interp.run(mem, quantum);
                }
            }
            if all_done {
                return;
            }
        }
        panic!("threads did not finish (livelock in emitted sync?)");
    }

    #[test]
    fn lock_protects_a_counter() {
        let make = || {
            let mut b = ProgramBuilder::new();
            let (lock, counter, i, n, tmp) = (
                Reg::new(1),
                Reg::new(2),
                Reg::new(3),
                Reg::new(4),
                Reg::new(5),
            );
            b.load_imm(lock, 0x100)
                .load_imm(counter, 0x200)
                .load_imm(i, 0)
                .load_imm(n, 20);
            let top = b.bind_new();
            emit_lock_acquire(&mut b, lock);
            b.load(tmp, counter, 0);
            b.add_imm(tmp, tmp, 1);
            b.store(tmp, counter, 0);
            emit_lock_release(&mut b, lock);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, n, top);
            b.halt();
            b.build()
        };
        let programs = vec![make(), make(), make()];
        let mut mem = MemImage::new();
        run_interleaved(&programs, &mut mem, 3);
        assert_eq!(mem.load(0x200), 60);
    }

    #[test]
    fn barrier_separates_phases() {
        // Each thread writes its slot, barriers, then sums all slots: the
        // sum is only correct if the barrier actually waited.
        let n_threads = 4;
        let make = |tid: i64| {
            let mut b = ProgramBuilder::new();
            let (bar, round, slot, sum, i, n, tmp) = (
                Reg::new(1),
                Reg::new(2),
                Reg::new(3),
                Reg::new(4),
                Reg::new(5),
                Reg::new(6),
                Reg::new(7),
            );
            b.load_imm(bar, 0x300).load_imm(round, 0);
            b.load_imm(slot, 0x400 + tid * 8);
            b.load_imm(tmp, tid + 1);
            b.store(tmp, slot, 0);
            emit_barrier(&mut b, bar, round, n_threads);
            b.load_imm(sum, 0).load_imm(i, 0).load_imm(n, n_threads);
            let top = b.bind_new();
            b.op_imm(rr_isa::AluOp::Shl, tmp, i, 3);
            b.load_imm(Reg::new(8), 0x400);
            b.add(Reg::new(9), Reg::new(8), tmp);
            b.load(tmp, Reg::new(9), 0);
            b.add(sum, sum, tmp);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, n, top);
            // Publish the sum.
            b.load_imm(Reg::new(10), 0x500 + tid * 8);
            b.store(sum, Reg::new(10), 0);
            b.halt();
            b.build()
        };
        let programs: Vec<Program> = (0..n_threads).map(make).collect();
        let mut mem = MemImage::new();
        run_interleaved(&programs, &mut mem, 2);
        for tid in 0..n_threads {
            assert_eq!(mem.load((0x500 + tid * 8) as u64), 1 + 2 + 3 + 4);
        }
    }
}
