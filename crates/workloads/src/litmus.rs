//! The four classic relaxed-memory litmus shapes — SB, MP, LB, IRIW —
//! as runnable [`Workload`]s.
//!
//! These are the *log-level* variants from the tier-1 litmus suite: each
//! shape is padded and cache-warmed so that on the release-consistent
//! machine the interesting access reliably performs out of program order
//! **and** an interval boundary falls between its perform and its count,
//! forcing the recorder down its reordered paths. That makes them the
//! sharpest probes `rr-check` has: tiny programs, deterministic, and
//! dense in exactly the events the recorder can get wrong.
//!
//! Thread counts are intrinsic to the shapes (SB/MP/LB: 2, IRIW: 4), so
//! unlike the SPLASH-like generators these take no `threads` parameter.

use rr_isa::{BranchCond, MemImage, ProgramBuilder, Reg};

use crate::Workload;

/// First contended variable (its own cache line).
pub const X: i64 = 0x100;
/// Second contended variable (its own cache line).
pub const Y: i64 = 0x200;
/// Base of the per-thread observation slots.
pub const OUT: i64 = 0x1000;

/// Filler before the slow older access: keeps the Base-4K recorder's
/// max-size interval boundary ahead of it (counted prefix < 4096).
pub const PRE_PAD: usize = 4000;
/// Filler after it: together with [`PRE_PAD`] the boundary is crossed
/// while the older access's cold miss is still in flight.
pub const POST_PAD: usize = 100;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Store buffering: each thread stores to its own variable and loads the
/// other's. The loaded line is warmed, the stored line is cold, so the
/// load performs (hits) while the older store is still draining — the
/// classic `r1 = r2 = 0` outcome, logged as a `ReorderedLoad` per core.
#[must_use]
pub fn sb() -> Workload {
    let thread = |my: i64, other: i64, out_slot: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), my);
        b.load_imm(r(3), other);
        b.load(r(6), r(3), 0); // warm the loaded line: the bypass is a hit
        b.nops(PRE_PAD);
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0); // cold buffered store: performs late...
        b.nops(POST_PAD);
        b.load(r(4), r(3), 0); // ...bypassed by this load (performs early)
        b.load_imm(r(5), OUT + out_slot);
        b.store(r(4), r(5), 0);
        b.halt();
        b.build()
    };
    Workload {
        name: "sb",
        programs: vec![thread(X, Y, 0), thread(Y, X, 8)],
        initial_mem: MemImage::new(),
    }
}

/// Message passing without fences: the producer's data store misses
/// while its flag store hits, so the flag becomes visible first (a
/// `ReorderedStore`); the consumer spins on the flag and may read stale
/// data.
#[must_use]
pub fn mp() -> Workload {
    let mut producer = ProgramBuilder::new();
    // Warm only the flag line: the data store will miss (slow) while the
    // flag store hits (fast), so the flag becomes visible first.
    producer.load_imm(r(1), X);
    producer.load_imm(r(3), Y);
    producer.load(r(6), r(3), 0);
    producer.nops(600);
    producer.load_imm(r(2), 41);
    producer.store(r(2), r(1), 0); // data = 41 (miss, slow)
    producer.load_imm(r(4), 1);
    producer.store(r(4), r(3), 0); // flag = 1 (hit, performs early)
    producer.halt();

    let mut consumer = ProgramBuilder::new();
    consumer.load_imm(r(1), Y);
    consumer.load_imm(r(2), 1);
    let spin = consumer.bind_new();
    consumer.load(r(3), r(1), 0);
    consumer.branch(BranchCond::Ne, r(3), r(2), spin);
    consumer.load_imm(r(4), X);
    consumer.load(r(5), r(4), 0); // may read stale data — no acquire fence
    consumer.load_imm(r(6), OUT);
    consumer.store(r(5), r(6), 0);
    consumer.halt();

    Workload {
        name: "mp",
        programs: vec![producer.build(), consumer.build()],
        initial_mem: MemImage::new(),
    }
}

/// Load buffering: each thread loads one variable then stores the other,
/// with an older cold store (to private scratch) still draining — the LB
/// load performs under that miss and is logged as a `ReorderedLoad`.
#[must_use]
pub fn lb() -> Workload {
    let thread = |read: i64, write: i64, scratch: i64, out_slot: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), read);
        b.load_imm(r(2), write);
        b.load_imm(r(7), scratch);
        b.load_imm(r(6), 0);
        b.store(r(6), r(2), 0); // own the store's line (write 0 = initial)
        b.nops(PRE_PAD);
        b.store(r(6), r(7), 0); // older cold store: drains slowly
        b.nops(POST_PAD);
        b.load(r(3), r(1), 0); // LB load: performs under the miss
        b.load_imm(r(4), 1);
        b.store(r(4), r(2), 0); // LB store: drains out of order too
        b.load_imm(r(5), OUT + out_slot);
        b.store(r(3), r(5), 0);
        b.halt();
        b.build()
    };
    Workload {
        name: "lb",
        programs: vec![thread(X, Y, 0x300, 0), thread(Y, X, 0x400, 8)],
        initial_mem: MemImage::new(),
    }
}

/// Independent reads of independent writes, unfenced: two writers, two
/// readers reading the variables in opposite orders. The writers' nop pad
/// is sized so their stores' invalidations land between the readers'
/// loads' performs and their counting — both reads log as
/// `ReorderedLoad` on each reader.
#[must_use]
pub fn iriw() -> Workload {
    let writer = |addr: i64| {
        let mut b = ProgramBuilder::new();
        b.nops(4650); // mid-plateau: invalidations arrive perform < t < count
        b.load_imm(r(1), addr);
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0);
        b.halt();
        b.build()
    };
    let reader = |first: i64, second: i64, out: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), first);
        b.load_imm(r(3), second);
        b.load(r(6), r(3), 0); // warm the second line only
        b.nops(PRE_PAD);
        b.load(r(2), r(1), 0); // cold: performs under the invalidations
        b.nops(POST_PAD);
        b.load(r(4), r(3), 0); // warmed: performs under them too
        b.load_imm(r(5), out);
        b.store(r(2), r(5), 0);
        b.store(r(4), r(5), 8);
        b.halt();
        b.build()
    };
    Workload {
        name: "iriw",
        programs: vec![
            writer(X),
            writer(Y),
            reader(X, Y, OUT),
            reader(Y, X, OUT + 0x40),
        ],
        initial_mem: MemImage::new(),
    }
}

/// All four litmus shapes, in canonical order.
#[must_use]
pub fn litmus_suite() -> Vec<Workload> {
    vec![sb(), mp(), lb(), iriw()]
}

/// A single litmus shape by name.
#[must_use]
pub fn litmus_by_name(name: &str) -> Option<Workload> {
    match name {
        "sb" => Some(sb()),
        "mp" => Some(mp()),
        "lb" => Some(lb()),
        "iriw" => Some(iriw()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_their_intrinsic_thread_counts() {
        assert_eq!(sb().programs.len(), 2);
        assert_eq!(mp().programs.len(), 2);
        assert_eq!(lb().programs.len(), 2);
        assert_eq!(iriw().programs.len(), 4);
    }

    #[test]
    fn suite_and_by_name_agree() {
        for w in litmus_suite() {
            let again = litmus_by_name(w.name).expect("known");
            assert_eq!(again.programs, w.programs);
        }
        assert!(litmus_by_name("sc").is_none());
    }

    #[test]
    fn shapes_are_deterministic() {
        for (a, b) in litmus_suite().iter().zip(litmus_suite().iter()) {
            assert_eq!(a.programs, b.programs, "{} differs between builds", a.name);
        }
    }
}
