//! Work-queue-driven, read-mostly analogues: `raytrace`, `volrend`,
//! `radiosity`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rr_isa::{AluOp, BranchCond, MemImage, ProgramBuilder, Reg};

use crate::compute::{emit_local_work, LocalRegs};
use crate::layout;
use crate::sync::{emit_lock_acquire, emit_lock_release};
use crate::Workload;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Words in each thread's private compute area.
const LOCAL_WORDS: i64 = 8192;

fn local_base(tid: usize) -> i64 {
    layout::private_base(tid) + 0x8_0000
}

const SCENE_WORDS: i64 = 256;

fn seed_scene(seed: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for w in 0..SCENE_WORDS {
        mem.store(
            (layout::DATA_BASE + w * 8) as u64,
            rng.gen_range(1..1 << 16),
        );
    }
    mem
}

/// RAYTRACE analogue: a shared read-only scene, a global atomic work
/// counter handing out tiles, and private framebuffer writes. Communication
/// is almost entirely the work queue plus cold scene sharing — the real
/// RAYTRACE's profile.
#[must_use]
pub fn raytrace(threads: usize, size: u32) -> Workload {
    let tasks = (threads as i64) * (12 * size) as i64;
    let reads_per_task = 14i64;
    let initial_mem = seed_scene(0x4a7);
    let programs = (0..threads)
        .map(|tid| {
            let mut b = ProgramBuilder::new();
            let (q, one, t, ntasks, scene, fb) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (i, lim, idx, addr, v, acc) = (r(7), r(8), r(9), r(10), r(11), r(12));
            b.load_imm(q, layout::QUEUE_ADDR);
            b.load_imm(one, 1);
            b.load_imm(ntasks, tasks);
            b.load_imm(scene, layout::DATA_BASE);
            b.load_imm(fb, layout::private_base(tid));
            let local = LocalRegs::standard();
            let grab = b.bind_new();
            let done = b.label();
            b.fetch_add(t, q, one);
            b.branch(BranchCond::Geu, t, ntasks, done);
            // Shading and intersection math: private computation.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 160);
            // Trace: read a pseudo-random walk of scene words.
            b.load_imm(acc, 0);
            b.op_imm(AluOp::Mul, idx, t, 37);
            b.load_imm(i, 0).load_imm(lim, reads_per_task);
            let ray = b.bind_new();
            b.op_imm(AluOp::And, idx, idx, SCENE_WORDS - 1);
            b.op_imm(AluOp::Shl, addr, idx, 3);
            b.add(addr, scene, addr);
            b.load(v, addr, 0);
            b.add(acc, acc, v);
            b.op_imm(AluOp::Mul, idx, idx, 13);
            b.op_imm(AluOp::Add, idx, idx, 7);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, ray);
            // Private framebuffer write (tile = task index mod 256).
            b.op_imm(AluOp::And, addr, t, 255);
            b.op_imm(AluOp::Shl, addr, addr, 3);
            b.add(addr, fb, addr);
            b.store(acc, addr, 0);
            b.jump(grab);
            b.bind(done);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "raytrace",
        programs,
        initial_mem,
    }
}

/// VOLREND analogue: like `raytrace` but with finer tasks and a shared
/// progress counter bumped per task (VOLREND's image/opacity sharing is
/// lighter but its task rate higher).
#[must_use]
pub fn volrend(threads: usize, size: u32) -> Workload {
    let tasks = (threads as i64) * (20 * size) as i64;
    let reads_per_task = 6i64;
    let initial_mem = seed_scene(0x701);
    let programs = (0..threads)
        .map(|tid| {
            let mut b = ProgramBuilder::new();
            let (q, one, t, ntasks, scene, fb, progress) =
                (r(1), r(2), r(3), r(4), r(5), r(6), r(13));
            let (i, lim, idx, addr, v, acc) = (r(7), r(8), r(9), r(10), r(11), r(12));
            b.load_imm(q, layout::QUEUE_ADDR);
            b.load_imm(one, 1);
            b.load_imm(ntasks, tasks);
            b.load_imm(scene, layout::DATA_BASE);
            b.load_imm(fb, layout::private_base(tid));
            b.load_imm(progress, layout::HIST_BASE);
            let local = LocalRegs::standard();
            let grab = b.bind_new();
            let done = b.label();
            b.fetch_add(t, q, one);
            b.branch(BranchCond::Geu, t, ntasks, done);
            // Ray compositing: private computation per task.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 90);
            b.load_imm(acc, 0);
            b.op_imm(AluOp::Mul, idx, t, 11);
            b.load_imm(i, 0).load_imm(lim, reads_per_task);
            let sample = b.bind_new();
            b.op_imm(AluOp::And, idx, idx, SCENE_WORDS - 1);
            b.op_imm(AluOp::Shl, addr, idx, 3);
            b.add(addr, scene, addr);
            b.load(v, addr, 0);
            b.add(acc, acc, v);
            b.op_imm(AluOp::Add, idx, idx, 19);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, sample);
            b.op_imm(AluOp::And, addr, t, 127);
            b.op_imm(AluOp::Shl, addr, addr, 3);
            b.add(addr, fb, addr);
            b.store(acc, addr, 0);
            // Shared progress tick.
            b.fetch_add(v, progress, one);
            b.jump(grab);
            b.bind(done);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "volrend",
        programs,
        initial_mem,
    }
}

/// RADIOSITY analogue: a task queue whose tasks perform lock-protected
/// read-modify-writes on shared patches — the patch-interaction structure
/// that makes RADIOSITY lock-intensive.
#[must_use]
pub fn radiosity(threads: usize, size: u32) -> Workload {
    let patches = 10i64;
    let patch_words = 4i64;
    let tasks = (threads as i64) * (9 * size) as i64;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0x4ad10);
    for w in 0..patches * patch_words {
        initial_mem.store(
            (layout::DATA2_BASE + w * 8) as u64,
            rng.gen_range(1..1 << 10),
        );
    }
    let programs = (0..threads)
        .map(|_tid| {
            let mut b = ProgramBuilder::new();
            let (q, one, t, ntasks, lock, base) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (p, i, lim, addr, v, energy) = (r(7), r(8), r(9), r(10), r(11), r(12));
            b.load_imm(q, layout::QUEUE_ADDR);
            b.load_imm(one, 1);
            b.load_imm(ntasks, tasks);
            let local = LocalRegs::standard();
            let grab = b.bind_new();
            let done = b.label();
            b.fetch_add(t, q, one);
            b.branch(BranchCond::Geu, t, ntasks, done);
            // Form-factor computation: private work before touching the
            // shared patch.
            emit_local_work(&mut b, &local, local_base(_tid), LOCAL_WORDS, 200);
            // p = t mod patches (small modulus by repeated subtraction).
            b.op(AluOp::Add, p, t, Reg::ZERO);
            let modtop = b.bind_new();
            let modend = b.label();
            b.load_imm(v, patches);
            b.branch(BranchCond::Lt, p, v, modend);
            b.op_imm(AluOp::Sub, p, p, patches);
            b.jump(modtop);
            b.bind(modend);
            b.op_imm(AluOp::Shl, lock, p, 6);
            b.op_imm(AluOp::Add, lock, lock, layout::LOCK_BASE);
            emit_lock_acquire(&mut b, lock);
            b.op_imm(AluOp::Mul, base, p, patch_words * 8);
            b.op_imm(AluOp::Add, base, base, layout::DATA2_BASE);
            b.load_imm(energy, 0);
            b.load_imm(i, 0).load_imm(lim, patch_words);
            let upd = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, base, addr);
            b.load(v, addr, 0);
            b.add(energy, energy, v);
            b.op_imm(AluOp::Shr, v, v, 1);
            b.op_imm(AluOp::Add, v, v, 3);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, upd);
            emit_lock_release(&mut b, lock);
            b.jump(grab);
            b.bind(done);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "radiosity",
        programs,
        initial_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_workloads_build() {
        for w in [raytrace(4, 1), volrend(4, 1), radiosity(4, 1)] {
            assert_eq!(w.programs.len(), 4, "{}", w.name);
            for p in &w.programs {
                assert!(p.len() > 20, "{} program too small", w.name);
            }
        }
    }

    #[test]
    fn scene_is_seeded() {
        let w = raytrace(1, 1);
        assert_ne!(w.initial_mem.load(layout::DATA_BASE as u64), 0);
    }
}
