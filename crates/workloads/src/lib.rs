//! # rr-workloads — SPLASH-2-like synthetic workloads
//!
//! The paper evaluates RelaxReplay on the SPLASH-2 suite. Real SPLASH-2
//! binaries need a full ISA, libc and OS; what the *recorder* actually
//! responds to is the **communication structure** of the workload — how
//! often threads conflict on cache lines, how much data they share, and how
//! dense synchronization is. This crate provides twelve generators, one per
//! SPLASH-2 application, that emit `rr-isa` programs with the corresponding
//! sharing structure (see DESIGN.md §4 for the substitution argument):
//!
//! | name | analogue | communication pattern |
//! |------|----------|----------------------|
//! | `fft` | FFT | all-to-all transpose phases between barriers |
//! | `lu` | LU | owner-computes diagonal block, everyone reads it |
//! | `radix` | RADIX | atomic histogram + permutation scatter |
//! | `cholesky` | CHOLESKY | lock-protected task queue over shared panels |
//! | `ocean` | OCEAN | nearest-neighbour grid stencil, barrier per sweep |
//! | `water_nsq` | WATER-NSQ | all-pairs force reads, locked accumulators |
//! | `water_sp` | WATER-SP | cell lists with atomic membership + barriers |
//! | `barnes` | BARNES | irregular pointer chasing with region locks |
//! | `fmm` | FMM | irregular traversal with phase barriers |
//! | `raytrace` | RAYTRACE | read-mostly scene + work queue |
//! | `volrend` | VOLREND | read-mostly volume + fine-grained work queue |
//! | `radiosity` | RADIOSITY | task queue + lock-protected patch updates |
//!
//! Every generator is deterministic (seeded by the workload name) and
//! scales with a `size` factor; [`suite`] returns all twelve.
//!
//! ```
//! let w = rr_workloads::suite(2, 1);
//! assert_eq!(w.len(), 12);
//! assert_eq!(w[0].name, "fft");
//! assert_eq!(w[0].programs.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compute;
pub mod corpus;
pub mod fuzz;
mod grid;
mod irregular;
mod kernels;
pub mod litmus;
mod queue;
pub mod sync;

use rr_isa::{MemImage, Program};

pub use corpus::{corpus_by_name, corpus_names, corpus_source, corpus_suite};
pub use fuzz::{fuzz_case, FuzzCase};
pub use grid::{ocean, water_nsq, water_sp};
pub use irregular::{barnes, fmm};
pub use kernels::{cholesky, fft, lu, radix};
pub use litmus::{litmus_by_name, litmus_suite};
pub use queue::{radiosity, raytrace, volrend};

/// A runnable multi-threaded workload: one program per thread plus the
/// initial shared-memory image.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name (the SPLASH-2 analogue, lowercase).
    pub name: &'static str,
    /// One program per thread.
    pub programs: Vec<Program>,
    /// Initial contents of shared memory.
    pub initial_mem: MemImage,
}

/// Shared-address-space layout used by all generators.
pub mod layout {
    /// Base of the lock array (locks spaced one cache line apart).
    pub const LOCK_BASE: i64 = 0x0010_0000;
    /// The barrier counter word.
    pub const BARRIER_ADDR: i64 = 0x0020_0000;
    /// The work-queue / shared-counter word (its own cache line).
    pub const QUEUE_ADDR: i64 = 0x0020_0100;
    /// Base of histogram / global accumulator arrays.
    pub const HIST_BASE: i64 = 0x0030_0000;
    /// Primary shared data array.
    pub const DATA_BASE: i64 = 0x0100_0000;
    /// Secondary shared data array (ping-pong buffers, scatter outputs).
    pub const DATA2_BASE: i64 = 0x0200_0000;
    /// Per-thread private region.
    #[must_use]
    pub fn private_base(tid: usize) -> i64 {
        0x1000_0000 + (tid as i64) * 0x10_0000
    }
    /// Address of the `i`-th lock.
    #[must_use]
    pub fn lock_addr(i: i64) -> i64 {
        LOCK_BASE + i * 64
    }
}

/// Builds all twelve workloads for `threads` threads at the given `size`
/// factor (1 ≈ tens of thousands of instructions per thread; the
/// experiment harness uses larger factors).
///
/// # Panics
///
/// Panics if `threads == 0` or `size == 0`.
#[must_use]
pub fn suite(threads: usize, size: u32) -> Vec<Workload> {
    assert!(threads > 0 && size > 0, "threads and size must be positive");
    vec![
        fft(threads, size),
        lu(threads, size),
        radix(threads, size),
        cholesky(threads, size),
        ocean(threads, size),
        water_nsq(threads, size),
        water_sp(threads, size),
        barnes(threads, size),
        fmm(threads, size),
        raytrace(threads, size),
        volrend(threads, size),
        radiosity(threads, size),
    ]
}

/// Builds a single workload by name (see the crate docs for the list).
/// The four litmus shapes (`sb`, `mp`, `lb`, `iriw`) and the
/// data-structure corpus shapes (see [`corpus_names`]) are also
/// accepted; their thread counts are intrinsic, so `threads` and `size`
/// are ignored for them.
#[must_use]
pub fn by_name(name: &str, threads: usize, size: u32) -> Option<Workload> {
    if let Some(w) = litmus_by_name(name) {
        return Some(w);
    }
    if let Some(w) = corpus_by_name(name) {
        return Some(w);
    }
    let w = match name {
        "fft" => fft(threads, size),
        "lu" => lu(threads, size),
        "radix" => radix(threads, size),
        "cholesky" => cholesky(threads, size),
        "ocean" => ocean(threads, size),
        "water_nsq" => water_nsq(threads, size),
        "water_sp" => water_sp(threads, size),
        "barnes" => barnes(threads, size),
        "fmm" => fmm(threads, size),
        "raytrace" => raytrace(threads, size),
        "volrend" => volrend(threads, size),
        "radiosity" => radiosity(threads, size),
        _ => return None,
    };
    Some(w)
}

/// Every name [`by_name`] accepts: the twelve SPLASH-2 analogues, the
/// four litmus shapes, and the data-structure corpus, in that order.
#[must_use]
pub fn known_names() -> Vec<&'static str> {
    let mut names = vec![
        "fft",
        "lu",
        "radix",
        "cholesky",
        "ocean",
        "water_nsq",
        "water_sp",
        "barnes",
        "fmm",
        "raytrace",
        "volrend",
        "radiosity",
        "sb",
        "mp",
        "lb",
        "iriw",
    ];
    names.extend(corpus_names());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_unique_names() {
        let w = suite(2, 1);
        let mut names: Vec<_> = w.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn by_name_round_trips() {
        for w in suite(2, 1) {
            let again = by_name(w.name, 2, 1).expect("known name");
            assert_eq!(again.name, w.name);
            assert_eq!(again.programs.len(), w.programs.len());
        }
        assert!(by_name("nonesuch", 2, 1).is_none());
    }

    #[test]
    fn known_names_all_resolve() {
        let names = known_names();
        assert!(names.len() >= 23, "12 analogues + 4 litmus + 7 corpus");
        for name in names {
            let w = by_name(name, 2, 1).expect("every advertised name resolves");
            assert_eq!(w.name, name);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for (a, b) in suite(4, 2).iter().zip(suite(4, 2).iter()) {
            assert_eq!(a.programs, b.programs, "{} differs between builds", a.name);
            assert!(a.initial_mem.contents_eq(&b.initial_mem));
        }
    }
}
