//! Irregular pointer-chasing analogues: `barnes`, `fmm`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rr_isa::{AluOp, BranchCond, MemImage, ProgramBuilder, Reg};

use crate::compute::{emit_local_work, LocalRegs};
use crate::layout;
use crate::sync::{emit_barrier, emit_lock_acquire, emit_lock_release};
use crate::Workload;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Words in each thread's private compute area.
const LOCAL_WORDS: i64 = 8192;

fn local_base(tid: i64) -> i64 {
    layout::private_base(tid as usize) + 0x8_0000
}

const NODES: i64 = 128;
const NODE_WORDS: i64 = 4; // [next, payload, force, pad]

/// Seeds a pseudo-random linked structure: each node's `next` field points
/// to another node, forming the shared "tree" both irregular workloads
/// chase.
fn seed_nodes(seed: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for node in 0..NODES {
        let base = layout::DATA_BASE + node * NODE_WORDS * 8;
        mem.store(base as u64, rng.gen_range(0..NODES) as u64);
        mem.store((base + 8) as u64, rng.gen_range(1..1 << 12));
    }
    mem
}

/// BARNES analogue: threads chase pseudo-random node chains through a
/// shared tree (read-mostly, irregular) and occasionally lock a node's
/// region to deposit a force update — the tree-walk plus cell-lock pattern
/// of the real BARNES.
#[must_use]
pub fn barnes(threads: usize, size: u32) -> Workload {
    let iterations = (12 * size) as i64;
    let hops = 10i64;
    let initial_mem = seed_nodes(0xba58e5);
    let programs = (0..threads)
        .map(|tid| {
            let tid = tid as i64;
            let mut b = ProgramBuilder::new();
            let (nodes, it, nit, node, hop, nhop) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (addr, v, acc, lock, tmp) = (r(7), r(8), r(9), r(10), r(11));
            let local = LocalRegs::standard();
            b.load_imm(nodes, layout::DATA_BASE);
            b.load_imm(it, 0).load_imm(nit, iterations);
            let top = b.bind_new();
            // The body-force computation on this body: private work.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 160);
            // Start node = (tid*7 + it*13) & (NODES-1)
            b.op_imm(AluOp::Mul, node, it, 13);
            b.op_imm(AluOp::Add, node, node, tid * 7);
            b.op_imm(AluOp::And, node, node, NODES - 1);
            b.load_imm(acc, 0);
            b.load_imm(hop, 0).load_imm(nhop, hops);
            let walk = b.bind_new();
            // addr = nodes + node*NODE_WORDS*8
            b.op_imm(AluOp::Mul, addr, node, NODE_WORDS * 8);
            b.add(addr, nodes, addr);
            b.load(v, addr, 8); // payload
            b.add(acc, acc, v);
            b.load(node, addr, 0); // next pointer
            b.op_imm(AluOp::And, node, node, NODES - 1);
            b.add_imm(hop, hop, 1);
            b.branch(BranchCond::Lt, hop, nhop, walk);
            // Every 4th iteration: lock the final node's region (one lock
            // per 16 nodes) and deposit the accumulated force.
            b.op_imm(AluOp::And, tmp, it, 3);
            let skip = b.label();
            b.branch(BranchCond::Ne, tmp, Reg::ZERO, skip);
            b.op_imm(AluOp::Shr, lock, node, 4);
            b.op_imm(AluOp::Shl, lock, lock, 6);
            b.op_imm(AluOp::Add, lock, lock, layout::LOCK_BASE);
            emit_lock_acquire(&mut b, lock);
            b.op_imm(AluOp::Mul, addr, node, NODE_WORDS * 8);
            b.add(addr, nodes, addr);
            b.load(v, addr, 16);
            b.add(v, v, acc);
            b.store(v, addr, 16);
            emit_lock_release(&mut b, lock);
            b.bind(skip);
            b.add_imm(it, it, 1);
            b.branch(BranchCond::Lt, it, nit, top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "barnes",
        programs,
        initial_mem,
    }
}

/// FMM analogue: the same irregular traversal as `barnes`, organized into
/// phases — an upward read pass, a barrier, then a locked scatter pass,
/// then another barrier — matching FMM's phase-structured tree traversal.
#[must_use]
pub fn fmm(threads: usize, size: u32) -> Workload {
    let phases = (4 * size) as i64;
    let walks_per_phase = 6i64;
    let hops = 8i64;
    let n = threads as i64;
    let initial_mem = seed_nodes(0xf33);
    let programs = (0..threads)
        .map(|tid| {
            let tid = tid as i64;
            let mut b = ProgramBuilder::new();
            let (bar, round, nodes, phase, nphase) = (r(1), r(2), r(3), r(4), r(5));
            let (wk, nwk, node, hop, nhop, addr, v, acc, lock) =
                (r(6), r(7), r(8), r(9), r(10), r(11), r(12), r(13), r(14));
            let local = LocalRegs::standard();
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(nodes, layout::DATA_BASE);
            b.load_imm(phase, 0).load_imm(nphase, phases);
            let phase_top = b.bind_new();
            // The multipole evaluation: long private computation.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 300);
            // Upward pass: pure reads.
            b.load_imm(acc, 0);
            b.load_imm(wk, 0).load_imm(nwk, walks_per_phase);
            let walk_top = b.bind_new();
            b.op_imm(AluOp::Mul, node, wk, 29);
            b.op_imm(AluOp::Add, node, node, tid * 11 + 1);
            b.op_imm(AluOp::And, node, node, NODES - 1);
            b.load_imm(hop, 0).load_imm(nhop, hops);
            let chase = b.bind_new();
            b.op_imm(AluOp::Mul, addr, node, NODE_WORDS * 8);
            b.add(addr, nodes, addr);
            b.load(v, addr, 8);
            b.add(acc, acc, v);
            b.load(node, addr, 0);
            b.op_imm(AluOp::And, node, node, NODES - 1);
            b.add_imm(hop, hop, 1);
            b.branch(BranchCond::Lt, hop, nhop, chase);
            b.add_imm(wk, wk, 1);
            b.branch(BranchCond::Lt, wk, nwk, walk_top);
            emit_barrier(&mut b, bar, round, n);
            // Downward pass: locked scatter to a phase-dependent cell.
            b.op_imm(AluOp::Mul, node, phase, 17);
            b.op_imm(AluOp::Add, node, node, tid * 5);
            b.op_imm(AluOp::And, node, node, NODES - 1);
            b.op_imm(AluOp::Shr, lock, node, 4);
            b.op_imm(AluOp::Shl, lock, lock, 6);
            b.op_imm(AluOp::Add, lock, lock, layout::LOCK_BASE);
            emit_lock_acquire(&mut b, lock);
            b.op_imm(AluOp::Mul, addr, node, NODE_WORDS * 8);
            b.add(addr, nodes, addr);
            b.load(v, addr, 16);
            b.add(v, v, acc);
            b.store(v, addr, 16);
            emit_lock_release(&mut b, lock);
            emit_barrier(&mut b, bar, round, n);
            b.add_imm(phase, phase, 1);
            b.branch(BranchCond::Lt, phase, nphase, phase_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "fmm",
        programs,
        initial_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_workloads_build() {
        for w in [barnes(4, 1), fmm(4, 1)] {
            assert_eq!(w.programs.len(), 4, "{}", w.name);
            for p in &w.programs {
                assert!(p.len() > 20, "{} program too small", w.name);
            }
        }
    }

    #[test]
    fn node_links_stay_in_range() {
        let w = barnes(1, 1);
        for node in 0..NODES {
            let next = w
                .initial_mem
                .load((layout::DATA_BASE + node * NODE_WORDS * 8) as u64);
            assert!((next as i64) < NODES);
        }
    }
}
