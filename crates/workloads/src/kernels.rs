//! SPLASH-2 kernel analogues: `fft`, `lu`, `radix`, `cholesky`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rr_isa::{AluOp, BranchCond, MemImage, ProgramBuilder, Reg};

use crate::compute::{emit_local_work, LocalRegs};
use crate::layout;
use crate::sync::{emit_barrier, emit_lock_acquire, emit_lock_release};
use crate::Workload;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Words in each thread's private compute area (64 KiB — the L1 size, so
/// local work produces a realistic hit/miss mix).
const LOCAL_WORDS: i64 = 8192;

fn local_base(tid: usize) -> i64 {
    layout::private_base(tid) + 0x8_0000
}

/// FFT analogue: long local-compute stretches punctuated by all-to-all
/// transpose phases between barriers — the butterfly communication of the
/// real FFT collapsed to its sharing structure.
#[must_use]
pub fn fft(threads: usize, size: u32) -> Workload {
    let rows_per_thread = 4i64;
    let row_words = 8i64;
    let phases = (2 * size) as i64;
    let n = threads as i64;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0xff7);
    for row in 0..n * rows_per_thread {
        for w in 0..row_words {
            initial_mem.store(
                (layout::DATA_BASE + (row * row_words + w) * 8) as u64,
                rng.gen_range(1..1 << 20),
            );
        }
    }
    let programs = (0..threads)
        .map(|tid| {
            let tidi = tid as i64;
            let mut b = ProgramBuilder::new();
            let local = LocalRegs::standard();
            let (bar, round, base, phase, nphase) = (r(1), r(2), r(3), r(4), r(5));
            let (i, lim, addr, v, acc, peer_base) = (r(6), r(7), r(8), r(9), r(10), r(11));
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(
                base,
                layout::DATA_BASE + tidi * rows_per_thread * row_words * 8,
            );
            b.load_imm(phase, 0).load_imm(nphase, phases);
            let phase_top = b.bind_new();
            // The FFT compute step: a long local 1-D pass.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 220);
            // Update own rows from local results.
            b.load_imm(i, 0).load_imm(lim, rows_per_thread * row_words);
            let compute = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, base, addr);
            b.load(v, addr, 0);
            b.op_imm(AluOp::Mul, v, v, 3);
            b.op_imm(AluOp::Xor, v, v, 0x5a5a);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, compute);
            emit_barrier(&mut b, bar, round, n);
            // Transpose: read the rotating peer's rows, fold into own.
            // peer = (tid + phase + 1) mod n
            b.add_imm(peer_base, phase, tidi + 1);
            let modtop = b.bind_new();
            let done = b.label();
            b.load_imm(v, n);
            b.branch(BranchCond::Lt, peer_base, v, done);
            b.op_imm(AluOp::Sub, peer_base, peer_base, n);
            b.jump(modtop);
            b.bind(done);
            b.op_imm(
                AluOp::Mul,
                peer_base,
                peer_base,
                rows_per_thread * row_words * 8,
            );
            b.op_imm(AluOp::Add, peer_base, peer_base, layout::DATA_BASE);
            // Read the peer's rows (stable during this phase: everyone
            // writes the DATA2 transpose buffer, not DATA) and write the
            // transposed result into my DATA2 region.
            b.load_imm(i, 0).load_imm(lim, rows_per_thread * row_words);
            b.load_imm(acc, 0);
            let transpose = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(v, peer_base, addr);
            b.load(v, v, 0); // read peer data
            b.add(acc, acc, v);
            b.op_imm(
                AluOp::Add,
                addr,
                addr,
                layout::DATA2_BASE - layout::DATA_BASE,
            );
            b.add(addr, base, addr);
            b.store(acc, addr, 0); // write own DATA2 row
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, transpose);
            // More local compute before the closing barrier.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 220);
            emit_barrier(&mut b, bar, round, n);
            // Fold the transpose buffer back into my DATA rows (private:
            // both regions are mine).
            b.load_imm(i, 0).load_imm(lim, rows_per_thread * row_words);
            let fold = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.op_imm(AluOp::Add, v, addr, layout::DATA2_BASE - layout::DATA_BASE);
            b.add(v, base, v);
            b.load(v, v, 0);
            b.add(addr, base, addr);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, fold);
            b.add_imm(phase, phase, 1);
            b.branch(BranchCond::Lt, phase, nphase, phase_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "fft",
        programs,
        initial_mem,
    }
}

/// LU analogue: in step `k` the owner updates the shared diagonal block;
/// after a barrier everyone reads it while updating their private panels
/// (long local stretches), then another barrier closes the step.
#[must_use]
pub fn lu(threads: usize, size: u32) -> Workload {
    let steps = (3 * size) as i64;
    let n = threads as i64;
    let diag_words = 8i64;
    let panel_words = 16i64;
    let mut initial_mem = MemImage::new();
    for w in 0..diag_words {
        initial_mem.store((layout::DATA_BASE + w * 8) as u64, (w + 3) as u64);
    }
    let programs = (0..threads)
        .map(|tid| {
            let tidi = tid as i64;
            let mut b = ProgramBuilder::new();
            let local = LocalRegs::standard();
            let (bar, round, diag, panel, k, nk) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (i, lim, addr, v, d, owner) = (r(7), r(8), r(9), r(10), r(11), r(12));
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(diag, layout::DATA_BASE);
            b.load_imm(panel, layout::DATA2_BASE + tidi * panel_words * 8);
            b.load_imm(k, 0).load_imm(nk, steps);
            let step = b.bind_new();
            // owner = k mod n (n tiny: repeated subtraction)
            b.op(AluOp::Add, owner, k, Reg::ZERO);
            let modtop = b.bind_new();
            let modend = b.label();
            b.load_imm(v, n);
            b.branch(BranchCond::Lt, owner, v, modend);
            b.op_imm(AluOp::Sub, owner, owner, n);
            b.jump(modtop);
            b.bind(modend);
            b.load_imm(v, tidi);
            let not_owner = b.label();
            b.branch(BranchCond::Ne, owner, v, not_owner);
            // I own the diagonal block this step: factorize it.
            b.load_imm(i, 0).load_imm(lim, diag_words);
            let fac = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, diag, addr);
            b.load(v, addr, 0);
            b.op_imm(AluOp::Mul, v, v, 5);
            b.op_imm(AluOp::Add, v, v, 1);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, fac);
            b.bind(not_owner);
            emit_barrier(&mut b, bar, round, n);
            // Everyone reads the diagonal block and updates their panel,
            // then does the long interior-update local compute.
            b.load_imm(i, 0).load_imm(lim, panel_words);
            let upd = b.bind_new();
            b.op_imm(AluOp::And, d, i, diag_words - 1);
            b.op_imm(AluOp::Shl, d, d, 3);
            b.add(d, diag, d);
            b.load(d, d, 0); // shared read of the diagonal
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, panel, addr);
            b.load(v, addr, 0);
            b.add(v, v, d);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, upd);
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 380);
            emit_barrier(&mut b, bar, round, n);
            b.add_imm(k, k, 1);
            b.branch(BranchCond::Lt, k, nk, step);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "lu",
        programs,
        initial_mem,
    }
}

/// RADIX analogue, structured like the real kernel: build a **private**
/// histogram of local keys, merge it into the shared histogram with one
/// atomic per bucket, barrier, claim contiguous output ranges per bucket,
/// then scatter keys into the claimed slots (the permutation all-to-all
/// writes, without per-key atomics).
#[must_use]
pub fn radix(threads: usize, size: u32) -> Workload {
    let keys_per_thread = 96i64;
    let rounds = size as i64;
    let buckets = 16i64;
    let bucket_stride = 8i64; // words between shared buckets: one line each
    let n = threads as i64;
    let mut initial_mem = MemImage::new();
    let mut rng = StdRng::seed_from_u64(0x4ad1);
    for tid in 0..n {
        for i in 0..keys_per_thread {
            initial_mem.store(
                (layout::DATA_BASE + (tid * keys_per_thread + i) * 8) as u64,
                rng.gen_range(1..1 << 16),
            );
        }
    }
    let programs = (0..threads)
        .map(|tid| {
            let tidi = tid as i64;
            let mut b = ProgramBuilder::new();
            let local = LocalRegs::standard();
            let lhist = layout::private_base(tid) + 0x1000; // private histogram
            let claims = layout::private_base(tid) + 0x2000; // claimed bases
            let (bar, round, keys, i, lim, addr) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (key, bucket, v, amount, rd, nrd) = (r(7), r(8), r(9), r(10), r(11), r(12));
            b.load_imm(bar, layout::BARRIER_ADDR).load_imm(round, 0);
            b.load_imm(keys, layout::DATA_BASE + tidi * keys_per_thread * 8);
            b.load_imm(rd, 0).load_imm(nrd, rounds);
            let round_top = b.bind_new();
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 250);
            // Zero the private histogram.
            b.load_imm(i, 0).load_imm(lim, buckets);
            let z = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.op_imm(AluOp::Add, addr, addr, lhist);
            b.store(Reg::ZERO, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, z);
            // Private histogram of local keys.
            b.load_imm(i, 0).load_imm(lim, keys_per_thread);
            let h = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, keys, addr);
            b.load(key, addr, 0);
            b.op_imm(AluOp::And, bucket, key, buckets - 1);
            b.op_imm(AluOp::Shl, bucket, bucket, 3);
            b.op_imm(AluOp::Add, bucket, bucket, lhist);
            b.load(v, bucket, 0);
            b.add_imm(v, v, 1);
            b.store(v, bucket, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, h);
            // Merge into the shared histogram: one fetch-add per bucket;
            // the old value is my claimed base in that bucket.
            b.load_imm(i, 0).load_imm(lim, buckets);
            let merge = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.op_imm(AluOp::Add, addr, addr, lhist);
            b.load(amount, addr, 0);
            b.op_imm(AluOp::Mul, bucket, i, bucket_stride * 8);
            b.op_imm(AluOp::Add, bucket, bucket, layout::HIST_BASE);
            b.fetch_add(v, bucket, amount);
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.op_imm(AluOp::Add, addr, addr, claims);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, merge);
            emit_barrier(&mut b, bar, round, n);
            // Scatter: each key goes to DATA2 + (bucket*cap + claim++) * 8.
            b.load_imm(i, 0).load_imm(lim, keys_per_thread);
            let s = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, keys, addr);
            b.load(key, addr, 0);
            b.op_imm(AluOp::And, bucket, key, buckets - 1);
            b.op_imm(AluOp::Shl, addr, bucket, 3);
            b.op_imm(AluOp::Add, addr, addr, claims);
            b.load(v, addr, 0); // my cursor in this bucket
            b.add_imm(r(13), v, 1);
            b.store(r(13), addr, 0);
            // out = DATA2 + (bucket * capacity + cursor) * 8
            b.op_imm(AluOp::Mul, bucket, bucket, n * keys_per_thread * 8);
            b.op_imm(AluOp::Shl, v, v, 3);
            b.add(bucket, bucket, v);
            b.op_imm(AluOp::Add, bucket, bucket, layout::DATA2_BASE);
            b.store(key, bucket, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, s);
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 250);
            emit_barrier(&mut b, bar, round, n);
            b.add_imm(rd, rd, 1);
            b.branch(BranchCond::Lt, rd, nrd, round_top);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "radix",
        programs,
        initial_mem,
    }
}

/// CHOLESKY analogue: a lock-free task counter hands out column-update
/// tasks; each task does a long private supernode computation, then locks
/// its column panel and applies the update.
#[must_use]
pub fn cholesky(threads: usize, size: u32) -> Workload {
    let columns = 12i64;
    let col_words = 8i64;
    let tasks = (threads as i64) * (6 * size) as i64;
    let mut initial_mem = MemImage::new();
    for c in 0..columns * col_words {
        initial_mem.store((layout::DATA_BASE + c * 8) as u64, (c + 1) as u64);
    }
    let programs = (0..threads)
        .map(|tid| {
            let mut b = ProgramBuilder::new();
            let local = LocalRegs::standard();
            let (q, one, t, ntasks, col, lock) = (r(1), r(2), r(3), r(4), r(5), r(6));
            let (i, lim, addr, v, base) = (r(7), r(8), r(9), r(10), r(11));
            b.load_imm(q, layout::QUEUE_ADDR);
            b.load_imm(one, 1);
            b.load_imm(ntasks, tasks);
            let grab = b.bind_new();
            let done = b.label();
            b.fetch_add(t, q, one);
            b.branch(BranchCond::Geu, t, ntasks, done);
            // The task's private supernode computation.
            emit_local_work(&mut b, &local, local_base(tid), LOCAL_WORDS, 300);
            // col = t mod columns (repeated subtraction on a small range).
            b.op(AluOp::Add, col, t, Reg::ZERO);
            let modtop = b.bind_new();
            let modend = b.label();
            b.load_imm(v, columns);
            b.branch(BranchCond::Lt, col, v, modend);
            b.op_imm(AluOp::Sub, col, col, columns);
            b.jump(modtop);
            b.bind(modend);
            // lock(col); update the column; unlock.
            b.op_imm(AluOp::Shl, lock, col, 6);
            b.op_imm(AluOp::Add, lock, lock, layout::LOCK_BASE);
            emit_lock_acquire(&mut b, lock);
            b.op_imm(AluOp::Mul, base, col, col_words * 8);
            b.op_imm(AluOp::Add, base, base, layout::DATA_BASE);
            b.load_imm(i, 0).load_imm(lim, col_words);
            let upd = b.bind_new();
            b.op_imm(AluOp::Shl, addr, i, 3);
            b.add(addr, base, addr);
            b.load(v, addr, 0);
            b.op_imm(AluOp::Mul, v, v, 3);
            b.op_imm(AluOp::Xor, v, v, 0x11);
            b.store(v, addr, 0);
            b.add_imm(i, i, 1);
            b.branch(BranchCond::Lt, i, lim, upd);
            emit_lock_release(&mut b, lock);
            b.jump(grab);
            b.bind(done);
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "cholesky",
        programs,
        initial_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_nonempty_programs() {
        for w in [fft(4, 1), lu(4, 1), radix(4, 1), cholesky(4, 1)] {
            assert_eq!(w.programs.len(), 4, "{}", w.name);
            for p in &w.programs {
                assert!(p.len() > 10, "{} program too small", w.name);
            }
        }
    }

    #[test]
    fn radix_initial_keys_are_seeded() {
        let w = radix(2, 1);
        let first = w.initial_mem.load(layout::DATA_BASE as u64);
        assert_ne!(first, 0);
    }
}
