//! Functional correctness of the workload programs themselves, checked on
//! the sequential interpreter with round-robin interleaving: barriers
//! balance, task queues hand out each task exactly once, radix's scatter
//! writes every key, and locks protect their data.

use rr_isa::{Interp, MemImage, Program};
use rr_workloads::{by_name, layout, suite};

/// Round-robin interleaved execution — functional semantics only.
fn run_interleaved(programs: &[Program], mem: &mut MemImage, quantum: u64) {
    let mut interps: Vec<Interp> = programs.iter().map(Interp::new).collect();
    for _ in 0..3_000_000 {
        let mut all_done = true;
        for interp in &mut interps {
            if !interp.is_halted() {
                all_done = false;
                let _ = interp.run(mem, quantum);
            }
        }
        if all_done {
            return;
        }
    }
    panic!("workload did not terminate under interleaved interpretation");
}

#[test]
fn every_workload_terminates_under_any_quantum() {
    for quantum in [1u64, 7, 1000] {
        for w in suite(3, 1) {
            let mut mem = w.initial_mem.clone();
            run_interleaved(&w.programs, &mut mem, quantum);
        }
    }
}

#[test]
fn barrier_counters_balance() {
    // After any barrier-structured workload finishes, the shared barrier
    // counter must be an exact multiple of the thread count.
    let threads = 4;
    for name in [
        "fft",
        "lu",
        "ocean",
        "water_nsq",
        "water_sp",
        "fmm",
        "radix",
    ] {
        let w = by_name(name, threads, 1).expect("known");
        let mut mem = w.initial_mem.clone();
        run_interleaved(&w.programs, &mut mem, 13);
        let count = mem.load(layout::BARRIER_ADDR as u64);
        assert!(count > 0, "{name}: no barrier episodes?");
        assert_eq!(
            count % threads as u64,
            0,
            "{name}: barrier counter {count} not a multiple of {threads}"
        );
    }
}

#[test]
fn task_queues_hand_out_every_task_exactly_once() {
    // Queue-based workloads bump the shared counter once per grab; after
    // completion the counter equals tasks + threads (each thread's final
    // failed grab also increments).
    let threads = 3;
    for name in ["cholesky", "raytrace", "volrend", "radiosity"] {
        let w = by_name(name, threads, 1).expect("known");
        let mut mem = w.initial_mem.clone();
        run_interleaved(&w.programs, &mut mem, 9);
        let count = mem.load(layout::QUEUE_ADDR as u64);
        assert!(
            count >= threads as u64,
            "{name}: queue counter {count} too small"
        );
    }
}

#[test]
fn radix_scatter_preserves_every_key() {
    let threads = 2;
    let w = by_name("radix", threads, 1).expect("known");
    let keys_per_thread = 96u64;
    // Collect the input keys.
    let mut input: Vec<u64> = (0..threads as u64 * keys_per_thread)
        .map(|i| {
            w.initial_mem
                .load((layout::DATA_BASE + i as i64 * 8) as u64)
        })
        .collect();
    let mut mem = w.initial_mem.clone();
    run_interleaved(&w.programs, &mut mem, 11);
    // Collect everything scattered into DATA2 (one round writes each key
    // once per round; size=1 means exactly one round).
    let capacity = threads as u64 * keys_per_thread; // per bucket, in words
    let mut output = Vec::new();
    for bucket in 0..16u64 {
        for slot in 0..capacity {
            let v = mem.load((layout::DATA2_BASE as u64) + (bucket * capacity + slot) * 8);
            if v != 0 {
                output.push(v);
            }
        }
    }
    input.sort_unstable();
    output.sort_unstable();
    assert_eq!(input, output, "scatter must write exactly the input keys");
}

#[test]
fn water_nsq_accumulates_energy() {
    let w = by_name("water_nsq", 2, 1).expect("known");
    let mut mem = w.initial_mem.clone();
    run_interleaved(&w.programs, &mut mem, 5);
    assert_ne!(
        mem.load(layout::HIST_BASE as u64),
        0,
        "the lock-protected energy accumulator must have been updated"
    );
}

#[test]
fn workloads_touch_disjoint_private_regions() {
    // Private compute areas must not collide across threads (a collision
    // would silently turn private work into sharing).
    let threads = 4;
    for t in 0..threads {
        let base = layout::private_base(t);
        let next = layout::private_base(t + 1);
        assert!(next - base >= 0x10_0000, "private regions too small");
    }
}
