; Test-and-test-and-set spinlock protecting a shared counter.
;
; Every core acquires the lock N times and increments the counter inside
; the critical section. The lock word and the counter sit on different
; cache lines; the CAS supplies acquire semantics, the release is a
; fence.rel followed by a plain store — the classic way this lowers on a
; release-consistent machine. Final state: CTR == NCORES * N, and each
; core publishes its completed iteration count at OUT + TID*64.

.name spinlock
.cores 4
.param N = 12

.const LOCK = 0x100000          ; lock word (own line)
.const CTR  = 0x100040          ; protected counter (own line)
.const OUT  = 0x300000          ; per-core result slots

.reg r10 = LOCK
.reg r11 = CTR
.reg r12 = N
.reg r13 = 0                    ; i
.reg r20 = OUT + TID * 64

loop:
acquire:
    ld   r1, (r10)              ; test: poll until the lock looks free
    beq  r1, r0, try
    li   r2, 8                  ; backoff between polls
backoff:
    subi r2, r2, 1
    bne  r2, r0, backoff
    j    acquire
try:
    li   r2, 0
    li   r3, 1
    cas  r4, (r10), r2, r3      ; test-and-set (acquire)
    bne  r4, r0, acquire
    ; --- critical section ---
    ld   r5, (r11)
    addi r5, r5, 1
    st   r5, (r11)
    ; --- release ---
    fence.rel
    st   r0, (r10)
    addi r13, r13, 1
    blt  r13, r12, loop

    st   r13, (r20)             ; publish my iteration count
    fence.rel
    halt
