; Ticket lock (FIFO spinlock) protecting a shared counter.
;
; Acquire is a fetch-add on the next-ticket word, then a spin on the
; now-serving word until it equals the acquired ticket. Release is a plain
; store of ticket+1 behind a release fence (only the holder ever writes
; now-serving). This produces a different communication structure than the
; TTAS lock: the next-ticket line is all-RMW contention, the now-serving
; line is single-writer/many-reader. Final state: CTR == NCORES * N.

.name ticket_lock
.cores 4
.param N = 10

.const NEXT  = 0x100000         ; next ticket to hand out
.const SERVE = 0x100040         ; now serving
.const CTR   = 0x100080         ; protected counter
.const OUT   = 0x300000

.reg r10 = NEXT
.reg r11 = SERVE
.reg r12 = CTR
.reg r13 = N
.reg r14 = 0                    ; i
.reg r20 = OUT + TID * 64
.reg r21 = 1

loop:
    fadd r1, (r10), r21         ; r1 = my ticket
wait:
    ld   r2, (r11)
    beq  r2, r1, enter
    li   r3, 6                  ; backoff between polls
backoff:
    subi r3, r3, 1
    bne  r3, r0, backoff
    j    wait
enter:
    fence.acq
    ; --- critical section ---
    ld   r4, (r12)
    addi r4, r4, 1
    st   r4, (r12)
    ; --- release: pass the lock to the next ticket ---
    fence.rel
    addi r2, r1, 1
    st   r2, (r11)
    addi r14, r14, 1
    blt  r14, r13, loop

    st   r14, (r20)
    fence.rel
    halt
