; Treiber stack: lock-free LIFO with CAS on the top-of-stack pointer.
;
; Each core pushes M nodes from its own arena (so no node is ever reused
; and the classic ABA hazard cannot bite), then pops M nodes — possibly
; other cores' — summing the popped values. Push links node.next to the
; observed top and CASes top to the node; pop CASes top to top.next.
; An empty stack makes poppers wait: every core pushes all its nodes
; before popping any, and total pushes == total pops, so the remaining
; pushes a waiting popper needs are never behind a pop (no deadlock).
;
; Node layout: [value, next], 16 bytes. Null is 0.

.name treiber_stack
.cores 4
.param M = 6

.const TOP   = 0x100000         ; top-of-stack pointer (0 = empty)
.const ARENA = 0x100100         ; per-core node arenas
.const OUT   = 0x300000         ; per-core popped-value sums

.reg r10 = TOP
.reg r11 = ARENA + TID * M * 16 ; my arena cursor
.reg r12 = M
.reg r13 = 0                    ; pushes done
.reg r14 = TID * 100            ; value tag: distinct per core
.reg r20 = OUT + TID * 64

; ----------------------------------------------------------------- push --
push:
    addi r14, r14, 1
    st   r14, (r11)             ; node.value
push_retry:
    ld   r1, (r10)              ; old top
    st   r1, 8(r11)             ; node.next = old top
    fence.rel
    cas  r2, (r10), r1, r11
    bne  r2, r1, push_retry
    addi r11, r11, 16           ; next node in my arena
    addi r13, r13, 1
    blt  r13, r12, push

; ------------------------------------------------------------------ pop --
.reg r13 = 0                    ; pops done
.reg r15 = 0                    ; sum of popped values
pop:
    ld   r1, (r10)              ; candidate top
    bne  r1, r0, pop_go
    li   r3, 8                  ; empty: wait for a straggler's push
pop_backoff:
    subi r3, r3, 1
    bne  r3, r0, pop_backoff
    j    pop
pop_go:
    fence.acq
    ld   r2, 8(r1)              ; next
    cas  r4, (r10), r1, r2
    bne  r4, r1, pop            ; lost the race, retry
    ld   r5, (r1)               ; claimed the node: read its value
    add  r15, r15, r5
    addi r13, r13, 1
    blt  r13, r12, pop

    st   r15, (r20)
    fence.rel
    halt
