; RCU-style epoch reclamation: one updater, three readers.
;
; A shared pointer PTR aims at one of two data blocks. Readers announce
; the global epoch in a per-reader slot, fence, dereference PTR and check
; the block is not poisoned; then mark themselves quiescent (announce =
; INACTIVE). The updater swings PTR to the other block, advances the
; epoch, waits for every reader slot to reach the new epoch (or be
; inactive), and only then "reclaims" the old block by poisoning it.
; A reader observing POISON means a grace period was violated — it sets
; an error flag the harness asserts stays zero.
;
; Termination: readers never block; the updater's grace-period wait ends
; because every reader either advances its announced epoch on its next
; iteration or halts as INACTIVE forever.

.name rcu_epoch
.cores 4
.param WN = 5                   ; updater rounds
.param RN = 10                  ; reads per reader

.const PTR      = 0x100000      ; the RCU-protected pointer
.const EPOCH    = 0x100040      ; global epoch
.const ANN      = 0x100100      ; reader announce slots (64-byte stride)
.const BLK_A    = 0x200000      ; data block A
.const BLK_B    = 0x200040      ; data block B
.const POISON   = 0xDEAD        ; value written into reclaimed blocks
.const INACTIVE = 0x100000000   ; announce value for "not in a read"
.const MAGIC    = 0x5000        ; live blocks hold MAGIC + round
.const OUT      = 0x300000
.const ERR      = 0x300200

.init PTR, BLK_A
.init BLK_A, MAGIC              ; round-0 payload, already live
.init ANN + 0 * 64, INACTIVE    ; core 0 is the updater, never reads
.init ANN + 1 * 64, INACTIVE
.init ANN + 2 * 64, INACTIVE
.init ANN + 3 * 64, INACTIVE

.reg r9  = PTR
.reg r10 = EPOCH
.reg r20 = OUT + TID * 64
.reg r21 = ERR + TID * 64
.reg r22 = TID

    bne  r22, r0, reader

; ------------------------------------------------------------ updater --
.reg r12 = WN
.reg r13 = 0                    ; round
.reg r14 = BLK_B                ; next block to install
uloop:
    addi r13, r13, 1
    li   r1, MAGIC
    add  r1, r1, r13
    st   r1, (r14)              ; fill the fresh block
    fence.rel
    swap r2, (r9), r14          ; swing PTR; r2 = old block
    ; Start a new grace period.
    li   r3, 1
    fadd r4, (r10), r3
    addi r4, r4, 1              ; r4 = new epoch value
    ; Wait for every reader to catch up or go quiescent.
    li   r5, ANN + 64           ; reader slots start at core 1
    li   r6, 3                  ; readers to check
grace:
    ld   r7, (r5)
    bgeu r7, r4, grace_ok       ; caught up (INACTIVE is huge, also ok)
    j    grace
grace_ok:
    addi r5, r5, 64
    subi r6, r6, 1
    bne  r6, r0, grace
    ; Old block is now unreachable: poison it, then reuse it next round.
    li   r1, POISON
    st   r1, (r2)
    fence.rel
    add  r14, r2, r0            ; the reclaimed block is next round's fresh one
    blt  r13, r12, uloop
    st   r13, (r20)
    fence.rel
    halt

; ------------------------------------------------------------- reader --
reader:
.reg r11 = ANN + TID * 64
.reg r12 = RN
.reg r13 = 0                    ; reads done
rloop:
    ld   r1, (r10)              ; current epoch
    st   r1, (r11)              ; announce: I am reading in this epoch
    fence.full                  ; announce before dereference
    ld   r2, (r9)               ; p = PTR
    fence.acq
    ld   r3, (r2)               ; *p
    li   r4, POISON
    bne  r3, r4, read_ok
    li   r5, 1
    st   r5, (r21)              ; read a reclaimed block!
read_ok:
    li   r6, INACTIVE
    fence.rel
    st   r6, (r11)              ; quiesce
    addi r13, r13, 1
    blt  r13, r12, rloop
    st   r13, (r20)
    fence.rel
    halt
