; Seqlock: one writer, two readers over a two-word payload.
;
; The writer bumps the sequence word to odd, updates both payload words to
; the same value, then bumps the sequence back to even. Readers retry
; until they see a stable even sequence around a consistent payload
; snapshot; a torn read (D1 != D2 inside a stable even section) sets an
; error flag the test harness asserts stays zero. Written SPMD-style: the
; whole body is prologue, each core branches on TID to its role.
;
; Reader retries always terminate: once the writer halts, the sequence is
; stable and even forever after.

.name seqlock
.cores 3
.param WN = 8                   ; writer rounds
.param RN = 8                   ; consistent snapshots per reader

.const SEQ = 0x100000           ; sequence word
.const D1  = 0x100040           ; payload word 0
.const D2  = 0x100048           ; payload word 1
.const OUT = 0x300000           ; per-core progress slots
.const ERR = 0x300200           ; per-core torn-read flags

.reg r10 = SEQ
.reg r11 = D1
.reg r20 = OUT + TID * 64
.reg r21 = ERR + TID * 64
.reg r22 = TID

    bne  r22, r0, reader        ; core 0 writes, everyone else reads

; ------------------------------------------------------------- writer --
.reg r12 = WN
.reg r13 = 0                    ; round
wloop:
    ld   r1, (r10)
    addi r1, r1, 1
    st   r1, (r10)              ; seq -> odd: writer in progress
    fence.rel
    addi r13, r13, 1
    st   r13, (r11)             ; D1 = round
    st   r13, 8(r11)            ; D2 = round
    fence.rel
    addi r1, r1, 1
    st   r1, (r10)              ; seq -> even: snapshot published
    blt  r13, r12, wloop
    st   r13, (r20)
    fence.rel
    halt

; ------------------------------------------------------------- reader --
reader:
.reg r12 = RN
.reg r14 = 0                    ; consistent snapshots taken
rloop:
    ld   r1, (r10)              ; s1
    andi r2, r1, 1
    bne  r2, r0, rloop          ; odd: writer active, retry
    fence.acq
    ld   r3, (r11)              ; d1
    ld   r4, 8(r11)             ; d2
    fence.acq
    ld   r5, (r10)              ; s2
    bne  r5, r1, rloop          ; sequence moved under us, retry
    beq  r3, r4, snap_ok        ; stable section must be consistent
    li   r6, 1
    st   r6, (r21)              ; torn read!
snap_ok:
    addi r14, r14, 1
    blt  r14, r12, rloop
    st   r14, (r20)
    fence.rel
    halt
