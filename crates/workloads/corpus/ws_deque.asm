; Work-stealing deque (Chase-Lev shape, no wraparound).
;
; Core 0 owns the deque: it pushes M tasks at the bottom, then takes from
; the bottom. Cores 1..3 are thieves stealing from the top with a CAS.
; The owner's take decrements bottom, fences, re-reads top, and resolves
; the one-element race with the same CAS the thieves use. Every obtained
; task bumps a global DONE counter; all cores run until DONE == M, which
; bounds every loop (tasks are finite and each is obtained exactly once).
;
; The buffer never wraps: capacity == M.

.name ws_deque
.cores 4
.param M = 10

.const BOT  = 0x100000          ; owner's bottom index
.const TOPI = 0x100040          ; steal-side top index
.const DONE = 0x100080          ; tasks consumed (fetch-add)
.const BUF  = 0x100100          ; task array, 8-byte entries
.const OUT  = 0x300000

.reg r9  = BUF
.reg r10 = BOT
.reg r11 = TOPI
.reg r12 = DONE
.reg r13 = M
.reg r15 = 0                    ; sum of my obtained tasks
.reg r16 = 0                    ; count of my obtained tasks
.reg r20 = OUT + TID * 64
.reg r21 = 1
.reg r22 = TID

    bne  r22, r0, thief

; -------------------------------------------------------------- owner --
; Push all M tasks: buf[b] = 10 + b; publish; b += 1.
.reg r1 = 0                     ; b
push:
    shli r2, r1, 3
    add  r2, r9, r2
    addi r3, r1, 10
    st   r3, (r2)               ; buf[b] = task value
    fence.rel
    addi r1, r1, 1
    st   r1, (r10)              ; bottom = b + 1
    blt  r1, r13, push

take:
    ld   r4, (r12)              ; all tasks consumed? then stop
    bge  r4, r13, finish
    ld   r1, (r10)
    beq  r1, r0, take           ; deque empty: wait for DONE to catch up
    subi r1, r1, 1
    st   r1, (r10)              ; bottom = b - 1 (claim tentatively)
    fence.full
    ld   r5, (r11)              ; top
    blt  r5, r1, take_mine      ; more than one element: it's mine
    bgeu r5, r1, take_race      ; top >= b: zero or one element left
take_mine:
    shli r2, r1, 3
    add  r2, r9, r2
    ld   r3, (r2)               ; task = buf[b-1]
    add  r15, r15, r3
    addi r16, r16, 1
    fadd r6, (r12), r21         ; DONE += 1
    j    take
take_race:
    addi r7, r1, 1
    st   r7, (r10)              ; restore bottom
    bne  r5, r1, take           ; top > b-1: already empty
    addi r8, r5, 1
    cas  r6, (r11), r5, r8      ; fight the thieves for the last task
    bne  r6, r5, take
    shli r2, r5, 3
    add  r2, r9, r2
    ld   r3, (r2)
    add  r15, r15, r3
    addi r16, r16, 1
    fadd r6, (r12), r21
    j    take

; -------------------------------------------------------------- thief --
thief:
    ld   r4, (r12)
    bge  r4, r13, finish        ; all tasks consumed
    ld   r5, (r11)              ; t = top
    fence.acq
    ld   r1, (r10)              ; b = bottom
    bge  r5, r1, thief          ; empty-looking: retry (DONE will stop us)
    shli r2, r5, 3
    add  r2, r9, r2
    ld   r3, (r2)               ; read the task first (may be stale)
    addi r8, r5, 1
    cas  r6, (r11), r5, r8      ; claim it
    bne  r6, r5, thief          ; lost the race
    add  r15, r15, r3
    addi r16, r16, 1
    fadd r6, (r12), r21         ; DONE += 1
    j    thief

finish:
    st   r16, (r20)             ; tasks I obtained
    st   r15, 8(r20)            ; sum of their values
    fence.rel
    halt
