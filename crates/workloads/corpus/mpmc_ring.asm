; Bounded MPMC ring buffer with per-slot sequence numbers (Vyukov style).
;
; Two producers and two consumers share a 4-slot ring. Each slot carries a
; sequence word: slot i starts at seq == i; a producer may fill position
; pos when seq == pos (then publishes seq = pos+1), a consumer may drain
; position pos when seq == pos+1 (then recycles seq = pos+CAP). Claiming a
; position is a CAS on the shared enqueue/dequeue cursor. Producers block
; on a full ring and consumers on an empty one; production == consumption
; totals, so every wait is eventually satisfied.
;
; Slot layout: [seq, data], 16 bytes, CAP = 4 (mask 3).

.name mpmc_ring
.cores 4
.param M = 8                    ; items per producer == items per consumer

.const EP   = 0x100000          ; enqueue cursor
.const DP   = 0x100040          ; dequeue cursor
.const BUF  = 0x100100          ; slot array
.const CAP  = 4
.const MASK = CAP - 1
.const OUT  = 0x300000

.init BUF + 0  * 16, 0          ; slot seq words start at their index
.init BUF + 1  * 16, 1
.init BUF + 2  * 16, 2
.init BUF + 3  * 16, 3

.reg r9  = MASK
.reg r12 = M
.reg r13 = 0                    ; items processed
.reg r15 = 0                    ; consumer checksum
.reg r20 = OUT + TID * 64
.reg r22 = TID

    li   r1, 2
    blt  r22, r1, producer      ; cores 0,1 produce; cores 2,3 consume
    j    consumer

; ------------------------------------------------------------ producer --
producer:
.reg r10 = EP
ploop:
    ld   r1, (r10)              ; pos = enqueue cursor
    and  r2, r1, r9             ; slot index = pos & MASK
    shli r2, r2, 4
    li   r3, BUF
    add  r3, r3, r2             ; slot address
    ld   r4, (r3)               ; slot seq
    bne  r4, r1, ploop          ; not my turn yet (ring full or raced)
    addi r5, r1, 1
    cas  r6, (r10), r1, r5      ; claim the position
    bne  r6, r1, ploop
    muli r7, r1, 3
    addi r7, r7, 100            ; data = 100 + 3*pos (position-determined)
    st   r7, 8(r3)
    fence.rel
    st   r5, (r3)               ; publish: seq = pos + 1
    addi r13, r13, 1
    blt  r13, r12, ploop
    j    done

; ------------------------------------------------------------ consumer --
consumer:
.reg r10 = DP
cloop:
    ld   r1, (r10)              ; pos = dequeue cursor
    and  r2, r1, r9
    shli r2, r2, 4
    li   r3, BUF
    add  r3, r3, r2
    ld   r4, (r3)               ; slot seq
    addi r5, r1, 1
    bne  r4, r5, cloop          ; nothing published here yet
    cas  r6, (r10), r1, r5      ; claim the position
    bne  r6, r1, cloop
    fence.acq
    ld   r7, 8(r3)              ; take the data
    add  r15, r15, r7
    addi r8, r1, CAP
    fence.rel
    st   r8, (r3)               ; recycle: seq = pos + CAP
    addi r13, r13, 1
    blt  r13, r12, cloop

done:
    st   r13, (r20)
    st   r15, 8(r20)            ; consumer checksum (0 for producers)
    fence.rel
    halt
