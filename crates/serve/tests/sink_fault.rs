//! RemoteSink failure semantics: a server that drops the socket
//! mid-stream must poison the recorder, keep the un-streamed suffix
//! buffered, and leave every entry accounted for across the server,
//! the sink's unsent buffer, and the recorder — the PR 4 sink-fault
//! contract, network edition.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

use relaxreplay::{Design, LogSink, Recorder, RecorderConfig};
use rr_cpu::{CoreObserver, PerformRecord};
use rr_mem::{AccessKind, CoreId, LineAddr};
use rr_serve::proto::{SealCore, SealVariant};
use rr_serve::{serve, Client, FaultSpec, RemoteSink, ServerConfig};
use rr_sim::{RemoteFault, StoreError};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rr-serve-fault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drives a recorder through a deterministic synthetic access stream
/// (the recorder unit tests' `drive` idiom): dispatch, perform, retire,
/// tick per access, with periodic conflicting snoops so intervals keep
/// terminating and log entries keep flowing into the sink.
fn drive(rec: &mut Recorder, accesses: u64) {
    for seq in 0..accesses {
        assert!(rec.on_dispatch(seq, true));
        rec.on_perform(&PerformRecord {
            seq,
            kind: AccessKind::Load,
            addr: (seq % 64) * 8,
            line: LineAddr::containing((seq % 64) * 8),
            loaded: Some(seq),
            stored: None,
            cycle: seq,
        });
        rec.on_retire(seq, true, seq);
        rec.tick(seq);
        if seq % 5 == 0 {
            rec.on_snoop(LineAddr::containing((seq % 64) * 8), true, seq);
        }
    }
    rec.finish(accesses);
}

/// The fault-free twin: the exact entry stream the faulty run would
/// have produced, for conservation accounting.
fn twin_entries(accesses: u64) -> Vec<relaxreplay::LogEntry> {
    let cfg = RecorderConfig::splash_default(Design::Base, Some(64));
    let mut rec = Recorder::new(CoreId::new(0), cfg);
    drive(&mut rec, accesses);
    rec.into_log().entries
}

#[test]
fn healthy_stream_seals_and_reads_back() {
    let root = tmp_root("healthy");
    let handle = serve("127.0.0.1:0", ServerConfig::new(&root)).expect("serve");
    let addr = handle.addr().to_string();

    let client = Arc::new(Mutex::new(Client::connect(&addr).expect("connect")));
    // Tiny chunks so even a short drive crosses many chunk boundaries.
    let mut sink =
        RemoteSink::with_chunk_bytes(Arc::clone(&client), "live", "stream", CoreId::new(0), 64)
            .expect("sink");
    let entries = twin_entries(400);
    assert!(entries.len() > 8, "want a multi-chunk stream");
    for e in &entries {
        sink.emit(e).expect("healthy emit");
    }
    sink.close().expect("healthy close");
    assert!(sink.error().is_none());
    assert_eq!(sink.acked_entries(), entries.len() as u64);
    assert!(sink.chunks_sent() > 1, "want multiple chunks on the wire");
    assert!(sink.unsent_handle().lock().expect("unsent").is_empty());

    // Seal the streamed chunks into a run and read the log back.
    let wire_version = sink.wire_version();
    let chunks = sink.chunks_sent();
    client
        .lock()
        .expect("client")
        .seal_run(
            "live",
            1,
            vec![SealVariant {
                label: "stream".to_string(),
                cores: vec![SealCore {
                    wire_version,
                    chunks,
                }],
                ordering: None,
            }],
            Vec::new(),
        )
        .expect("seal streamed run");

    let bytes = client
        .lock()
        .expect("client")
        .get_range("live", "stream", 0, 0, u64::MAX)
        .expect("fetch streamed log");
    let log = relaxreplay::wire::decode_chunked(&bytes).expect("decode streamed log");
    assert_eq!(log.entries, entries, "streamed log round-trips exactly");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropped_connection_poisons_recorder_and_conserves_entries() {
    const KILL_AFTER: u64 = 3;
    let root = tmp_root("kill");
    let mut config = ServerConfig::new(&root);
    config.fault = FaultSpec {
        kill_after_chunks: Some(KILL_AFTER),
    };
    let handle = serve("127.0.0.1:0", config).expect("serve");
    let addr = handle.addr().to_string();

    let accesses = 400;
    let twin = twin_entries(accesses);

    let client = Arc::new(Mutex::new(Client::connect(&addr).expect("connect")));
    let sink =
        RemoteSink::with_chunk_bytes(Arc::clone(&client), "doomed", "stream", CoreId::new(0), 64)
            .expect("sink");
    let stats = sink.stats_handle();
    let unsent = sink.unsent_handle();

    let cfg = RecorderConfig::splash_default(Design::Base, Some(64));
    let mut rec = Recorder::new(CoreId::new(0), cfg);
    rec.set_sink(Box::new(sink));
    drive(&mut rec, accesses);

    // The recorder latched the transport failure and poisoned itself.
    assert!(rec.is_poisoned(), "dropped connection must poison");
    let err = rec.take_sink_error().expect("latched sink error");
    assert!(
        matches!(err, relaxreplay::WireError::Io(_)),
        "latched error is the transport fault: {err:?}"
    );

    // Accounting: the server acked exactly KILL_AFTER chunks; the sink
    // accepted more entries than it could deliver; the recorder kept
    // the never-accepted suffix in its buffer.
    let acked = stats.acked_entries.load(Relaxed);
    let sent_chunks = stats.chunks_sent.load(Relaxed);
    assert_eq!(sent_chunks, KILL_AFTER, "server killed after {KILL_AFTER}");
    assert_eq!(handle.stats().chunks.load(Relaxed), KILL_AFTER);

    let unsent = unsent.lock().expect("unsent").clone();
    assert!(!unsent.is_empty(), "accepted-but-unacked entries survive");
    assert_eq!(
        rec.streamed_entries(),
        acked + unsent.len() as u64,
        "streamed = acked + unsent (sink-accepted entries)"
    );
    let retained = rec.log().entries.clone();
    assert!(!retained.is_empty(), "un-streamed suffix stays buffered");

    // Conservation: server-acked prefix ++ sink-unsent ++ recorder
    // buffer is exactly the fault-free twin's entry stream.
    let mut reconstructed = twin[..acked as usize].to_vec();
    reconstructed.extend_from_slice(&unsent);
    reconstructed.extend_from_slice(&retained);
    assert_eq!(reconstructed, twin, "no entry lost or duplicated");

    // The doomed run was never sealed, so it is invisible to readers.
    match Client::connect(&addr).expect("connect").get_run("doomed") {
        Err(StoreError::Remote { kind, .. }) => assert_eq!(kind, RemoteFault::UnknownRun),
        other => panic!("unsealed run must be unknown, got {other:?}"),
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
