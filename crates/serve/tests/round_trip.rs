//! End-to-end rr-serve coverage: remote round trips are byte-identical
//! to local saves, identical corpora dedupe in the content-addressed
//! store, damaged blobs surface as typed errors, and ≥ 4 recorder
//! clients can ingest concurrently without interleaving corruption.

use std::path::{Path, PathBuf};

use rr_serve::{serve, Client, RemoteStore, ServerConfig};
use rr_sim::{LocalStore, RecordSession, RemoteFault, RunResult, RunStore, StoreError};
use rr_workloads::litmus::litmus_suite;
use rr_workloads::Workload;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rr-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn record(w: &Workload) -> RunResult {
    RecordSession::new(&w.programs, &w.initial_mem)
        .run()
        .expect("record workload")
}

/// Every file under `dir`, relative path → contents.
fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

#[test]
fn remote_round_trip_matches_local() {
    let root = tmp_dir("roundtrip");
    let local_dir = tmp_dir("roundtrip-local");
    let handle = serve("127.0.0.1:0", ServerConfig::new(root.join("store"))).expect("serve");
    let remote = RemoteStore::new(handle.addr().to_string());
    let local = LocalStore::new(&local_dir);

    for w in litmus_suite() {
        let run = record(&w);
        let local_bytes = local.save_run(w.name, &run).expect("local save");
        let remote_bytes = remote.save_run(w.name, &run).expect("remote save");
        assert_eq!(local_bytes, remote_bytes, "{}: logical byte count", w.name);
    }

    let mut names = remote.list_runs().expect("list");
    names.sort();
    let mut expect: Vec<String> = litmus_suite().iter().map(|w| w.name.to_string()).collect();
    expect.sort();
    assert_eq!(names, expect);

    for name in &names {
        let local_run = local.load_run(name).expect("local load");
        let remote_run = remote.load_run(name).expect("remote load");
        assert_eq!(
            local_run.variants.len(),
            remote_run.variants.len(),
            "{name}: variant count"
        );
        for (a, b) in local_run.variants.iter().zip(&remote_run.variants) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.logs.len(), b.logs.len());
            for (la, lb) in a.logs.iter().zip(&b.logs) {
                assert_eq!(la.core, lb.core, "{name}/{}", a.label);
                assert_eq!(la.entries, lb.entries, "{name}/{}", a.label);
            }
            assert_eq!(a.ordering, b.ordering, "{name}/{}: ordering", a.label);
        }
        assert!(
            local_run
                .recorded
                .final_mem
                .contents_eq(&remote_run.recorded.final_mem),
            "{name}: ground-truth memory differs"
        );
        assert_eq!(
            local_run.recorded.load_traces, remote_run.recorded.load_traces,
            "{name}: ground-truth load traces differ"
        );

        // Byte-level: every materialized remote file equals the local
        // twin written by the plain `--save-logs` path.
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        for v in &local_run.variants {
            for (k, _) in v.logs.iter().enumerate() {
                let local_bytes = std::fs::read(
                    local_dir
                        .join(name)
                        .join(&v.label)
                        .join(format!("core{k}.rrlog")),
                )
                .expect("local .rrlog");
                let remote_bytes = client
                    .get_range(name, &v.label, k as u8, 0, u64::MAX)
                    .expect("get_range");
                assert_eq!(local_bytes, remote_bytes, "{name}/{}/core{k}", v.label);
            }
        }
    }

    // The stat path sees the same shape and verifies every blob.
    let stat = remote.stat_run(&names[0]).expect("stat");
    assert!(stat.cores >= 2);
    assert!(stat
        .variants
        .iter()
        .all(|v| v.chunks > 0 && v.log_bytes > 0));
    assert!(stat.truth_bytes > 0);
    let dedup = stat.dedup.expect("remote stat carries dedup");
    assert!(dedup.blobs > 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&local_dir);
}

#[test]
fn fetch_materializes_byte_identical_logdir() {
    let root = tmp_dir("fetch");
    let local_dir = tmp_dir("fetch-local");
    let out_dir = tmp_dir("fetch-out");
    let handle = serve("127.0.0.1:0", ServerConfig::new(root.join("store"))).expect("serve");
    let remote = RemoteStore::new(handle.addr().to_string());
    let local = LocalStore::new(&local_dir);

    let w = litmus_suite().remove(0);
    let run = record(&w);
    local.save_run(w.name, &run).expect("local save");
    remote.save_run(w.name, &run).expect("remote save");

    let exe = env!("CARGO_BIN_EXE_rr-serve");
    let status = std::process::Command::new(exe)
        .args([
            "fetch",
            &format!("{}/{}", handle.url(), w.name),
            "--out",
            out_dir.to_str().expect("utf8 path"),
        ])
        .status()
        .expect("run rr-serve fetch");
    assert!(status.success(), "fetch failed");

    // The fetched tree equals the locally saved twin, modulo the
    // `.rridx` skip indexes the server materializes eagerly (local
    // saves build them lazily on load).
    let local_files: Vec<_> = dir_snapshot(&local_dir)
        .into_iter()
        .filter(|(p, _)| !p.ends_with(".rridx"))
        .collect();
    let fetched_files: Vec<_> = dir_snapshot(&out_dir)
        .into_iter()
        .filter(|(p, _)| !p.ends_with(".rridx"))
        .collect();
    assert_eq!(local_files, fetched_files, "fetched tree != local twin");

    // And the fetched directory loads as a normal local store.
    let fetched = LocalStore::new(&out_dir)
        .load_run(w.name)
        .expect("load fetched");
    assert_eq!(fetched.variants.len(), run.variants.len());

    handle.shutdown();
    for d in [&root, &local_dir, &out_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn doubled_corpus_dedupes_to_one_blob_set() {
    let root = tmp_dir("dedup");
    let handle = serve("127.0.0.1:0", ServerConfig::new(root.join("store"))).expect("serve");
    let remote = RemoteStore::new(handle.addr().to_string());

    let w = litmus_suite().remove(0);
    let run = record(&w);
    remote.save_run("first", &run).expect("first save");
    let (blobs_a, blob_bytes_a, logical_a) = handle.store().dedup_stat().expect("dedup stat");
    assert!(blobs_a > 0 && blob_bytes_a > 0);

    // The identical run under a new name: every chunk payload dedupes,
    // so the blob set does not grow at all while logical bytes double.
    remote.save_run("second", &run).expect("second save");
    let (blobs_b, blob_bytes_b, logical_b) = handle.store().dedup_stat().expect("dedup stat");
    assert_eq!(blobs_a, blobs_b, "identical rerecord must add no blobs");
    assert_eq!(blob_bytes_a, blob_bytes_b);
    assert_eq!(logical_b, logical_a * 2);
    let ratio = logical_b as f64 / blob_bytes_b as f64;
    assert!(ratio >= 1.5, "dedup ratio {ratio:.2} below 1.5x");

    // The reported savings reach clients through stat.
    let stat = remote.stat_run("second").expect("stat");
    let dedup = stat.dedup.expect("dedup figures");
    assert!(
        dedup.ratio() >= 1.5,
        "client-visible ratio {:.2}",
        dedup.ratio()
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_blob_surfaces_as_typed_error_not_panic() {
    let root = tmp_dir("corrupt");
    let store_root = root.join("store");
    let handle = serve("127.0.0.1:0", ServerConfig::new(&store_root)).expect("serve");
    let addr = handle.addr().to_string();
    let remote = RemoteStore::new(addr.clone());

    let w = litmus_suite().remove(0);
    let run = record(&w);
    remote.save_run(w.name, &run).expect("save");

    // Flip one byte in the middle of the largest blob.
    let objects = store_root.join("objects");
    let blob_path = std::fs::read_dir(&objects)
        .expect("objects dir")
        .map(|e| e.expect("entry").path())
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .expect("at least one blob");
    let mut blob = std::fs::read(&blob_path).expect("read blob");
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    std::fs::write(&blob_path, &blob).expect("write corrupted blob");

    match remote.stat_run(w.name) {
        Err(StoreError::Remote { kind, detail }) => {
            assert_eq!(kind, RemoteFault::CorruptBlob, "detail: {detail}");
        }
        other => panic!("want typed corrupt-blob error, got {other:?}"),
    }

    // The CLI reports it and exits nonzero rather than panicking.
    let exe = env!("CARGO_BIN_EXE_rr-serve");
    let out = std::process::Command::new(exe)
        .args(["stat", &format!("rr://{addr}/{}", w.name)])
        .output()
        .expect("run rr-serve stat");
    assert!(!out.status.success(), "stat over a corrupt blob must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt-blob"),
        "stderr missing typed fault: {stderr}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_ingest_from_four_clients() {
    let root = tmp_dir("concurrent");
    let handle = serve("127.0.0.1:0", ServerConfig::new(root.join("store"))).expect("serve");
    let addr = handle.addr().to_string();

    // Four distinct workloads, recorded up front; each thread streams
    // its own run over its own connection, all at once.
    let runs: Vec<(String, RunResult)> = litmus_suite()
        .iter()
        .take(4)
        .map(|w| (w.name.to_string(), record(w)))
        .collect();
    assert_eq!(runs.len(), 4, "need 4 concurrent recorder clients");

    std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .iter()
            .map(|(name, run)| {
                let addr = addr.clone();
                s.spawn(move || {
                    let remote = RemoteStore::new(addr);
                    remote.save_run(name, run).expect("concurrent save");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ingest thread");
        }
    });

    // Every run survives intact — no cross-run interleaving.
    let remote = RemoteStore::new(addr);
    for (name, run) in &runs {
        let loaded = remote.load_run(name).expect("load after concurrent ingest");
        assert_eq!(loaded.variants.len(), run.variants.len(), "{name}");
        for (a, b) in loaded.variants.iter().zip(&run.variants) {
            for (la, lb) in a.logs.iter().zip(&b.logs) {
                assert_eq!(la.entries, lb.entries, "{name}/{}", a.label);
            }
        }
        assert!(
            loaded
                .recorded
                .final_mem
                .contents_eq(&run.recorded.final_mem),
            "{name}: ground truth differs"
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
