//! `rr-serve` — run, query, and benchmark the content-addressed log
//! service.
//!
//! ```text
//! rr-serve serve --root DIR [--listen HOST:PORT] [--workers N]
//! rr-serve fetch rr://host:port/run --out DIR
//! rr-serve stat <dir|rr://host:port[/run]>
//! rr-serve bench [--root DIR] [--out FILE] [--check-dedup RATIO] [--workers N]
//! ```
//!
//! `fetch` materializes a remote run as a local log directory with the
//! exact layout `--save-logs` writes (manifest, per-core `.rrlog`
//! files, ordering + ground-truth sidecars) plus the server's `.rridx`
//! skip indexes — the CI round-trip job diffs it against a locally
//! saved twin. `bench` records the concurrent data-structure corpus,
//! streams it to an in-process server twice (cold, then duplicated),
//! and writes a `BENCH_serve.json` trajectory document for
//! `rr-bench compare`.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rr_serve::proto::BundleVariant;
use rr_serve::{parse_and_open, serve, Client, RemoteStore, ServerConfig};
use rr_sim::sweep::{run_sweep, ReplayPolicy, SweepJob};
use rr_sim::{MachineConfig, RecorderSpec, RunStore, StoreError, StoreSpec};

const USAGE: &str = "usage:
  rr-serve serve --root DIR [--listen HOST:PORT] [--workers N]
  rr-serve fetch rr://host:port/run --out DIR
  rr-serve stat <dir|rr://host:port[/run]>
  rr-serve bench [--root DIR] [--out FILE] [--check-dedup RATIO] [--workers N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("stat") => cmd_stat(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rr-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following `flag` (or `flag=value`) out of `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn positional(args: &[String]) -> Option<&String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if let Some(rest) = a.strip_prefix("--") {
            skip = !rest.contains('=');
            continue;
        }
        return Some(a);
    }
    None
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let root = flag_value(args, "--root").ok_or("serve: --root DIR is required")?;
    let listen = flag_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let mut config = ServerConfig::new(root);
    if let Some(w) = flag_value(args, "--workers") {
        config.workers = w.parse().map_err(|_| format!("bad --workers {w:?}"))?;
    }
    let workers = config.effective_workers();
    let handle = serve(&listen, config).map_err(|e| e.to_string())?;
    eprintln!(
        "rr-serve: listening on {} ({workers} workers) — store at {}",
        handle.url(),
        handle.store().root().display()
    );
    handle.join();
    Ok(())
}

fn cmd_fetch(args: &[String]) -> Result<(), String> {
    let spec = positional(args).ok_or("fetch: missing rr://host:port/run URL")?;
    let out = flag_value(args, "--out").ok_or("fetch: --out DIR is required")?;
    let parsed = StoreSpec::parse(spec).map_err(|e| e.to_string())?;
    let StoreSpec::Remote {
        addr,
        run: Some(run),
    } = parsed
    else {
        return Err("fetch: the source must be an rr://host:port/run URL naming one run".into());
    };
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    let (cores, variants, truth) = client.get_run(&run).map_err(|e| e.to_string())?;
    let bytes = materialize_run(Path::new(&out), &run, cores, &variants, &truth)
        .map_err(|e| format!("fetch: {e}"))?;
    eprintln!(
        "fetched {run}: {} variant(s), {cores} core(s), {bytes} bytes under {out}",
        variants.len()
    );
    Ok(())
}

/// Writes a fetched run bundle as a local log directory, byte-identical
/// to what `--save-logs` produces for the same run (plus `.rridx`
/// sidecars, which local saves build lazily on load).
fn materialize_run(
    out: &Path,
    run: &str,
    cores: u8,
    variants: &[BundleVariant],
    truth: &[u8],
) -> Result<u64, String> {
    let run_dir = out.join(run);
    let io = |p: &Path, e: &std::io::Error| format!("{}: {e}", p.display());
    std::fs::create_dir_all(&run_dir).map_err(|e| io(&run_dir, &e))?;
    let mut manifest = format!("cores {cores}\n");
    let mut bytes = 0u64;
    for v in variants {
        manifest.push_str(&v.label);
        manifest.push('\n');
        let vdir = run_dir.join(&v.label);
        std::fs::create_dir_all(&vdir).map_err(|e| io(&vdir, &e))?;
        for (k, log) in v.logs.iter().enumerate() {
            let path = vdir.join(format!("core{k}.rrlog"));
            std::fs::write(&path, log).map_err(|e| io(&path, &e))?;
            bytes += log.len() as u64;
            if let Some(idx) = v.indexes.get(k) {
                if !idx.is_empty() {
                    let ipath = path.with_extension("rridx");
                    std::fs::write(&ipath, idx).map_err(|e| io(&ipath, &e))?;
                }
            }
        }
        if let Some(ord) = &v.ordering {
            let path = vdir.join("ordering.bin");
            std::fs::write(&path, ord).map_err(|e| io(&path, &e))?;
        }
    }
    let truth_path = run_dir.join("truth.bin");
    std::fs::write(&truth_path, truth).map_err(|e| io(&truth_path, &e))?;
    let manifest_path = run_dir.join("manifest.txt");
    std::fs::write(&manifest_path, manifest).map_err(|e| io(&manifest_path, &e))?;
    Ok(bytes)
}

fn cmd_stat(args: &[String]) -> Result<(), String> {
    let spec = positional(args).ok_or("stat: missing <dir|rr://host:port[/run]>")?;
    let (store, run) = parse_and_open(spec).map_err(|e| e.to_string())?;
    let runs = match run {
        Some(r) => vec![r],
        None => store.list_runs().map_err(|e| e.to_string())?,
    };
    if runs.is_empty() {
        println!("{}: no sealed runs", store.describe());
        return Ok(());
    }
    let mut dedup = None;
    for name in &runs {
        let stat = store.stat_run(name).map_err(|e| e.to_string())?;
        println!(
            "run {}: {} core(s), truth {} bytes",
            stat.name, stat.cores, stat.truth_bytes
        );
        for v in &stat.variants {
            println!(
                "  {}: {} chunk(s), {} .rrlog bytes{}",
                v.label,
                v.chunks,
                v.log_bytes,
                if v.has_ordering { ", ordering" } else { "" }
            );
        }
        dedup = stat.dedup.or(dedup);
    }
    if let Some(d) = dedup {
        println!(
            "store: {} blob(s), {} stored / {} logical bytes (dedup {:.2}x)",
            d.blobs,
            d.blob_bytes,
            d.logical_bytes,
            d.ratio()
        );
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check_dedup: Option<f64> = match flag_value(args, "--check-dedup") {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --check-dedup {v:?}"))?),
        None => None,
    };
    let workers: usize = match flag_value(args, "--workers") {
        Some(v) => v.parse().map_err(|_| format!("bad --workers {v:?}"))?,
        None => 0,
    };
    let root = flag_value(args, "--root").map_or_else(
        || std::env::temp_dir().join(format!("rr-serve-bench-{}", std::process::id())),
        PathBuf::from,
    );

    // Record the corpus once; the bench measures the service, not the
    // simulator, so replay is skipped.
    let specs = RecorderSpec::paper_matrix();
    let jobs: Vec<SweepJob> = rr_workloads::corpus_suite()
        .into_iter()
        .map(|w| {
            let machine = MachineConfig::splash_default(w.programs.len());
            SweepJob::from_specs(
                w.name,
                w.programs,
                w.initial_mem,
                machine,
                &specs,
                ReplayPolicy::Skip,
            )
        })
        .collect();
    let report = run_sweep(&jobs, workers).map_err(|e| format!("corpus sweep: {e}"))?;

    let handle = serve("127.0.0.1:0", ServerConfig::new(&root)).map_err(|e| e.to_string())?;
    let remote = RemoteStore::new(handle.addr().to_string());
    let bench = |f: &dyn Fn() -> Result<u64, StoreError>| -> Result<(u64, u64), String> {
        let t = Instant::now();
        let bytes = f().map_err(|e| e.to_string())?;
        Ok((bytes, t.elapsed().as_nanos() as u64))
    };

    // Pass A: cold ingest. Pass B: the identical corpus under fresh run
    // names — every chunk payload dedupes against pass A's blobs.
    let (cold_bytes, cold_ns) = bench(&|| {
        let mut total = 0;
        for o in &report.outputs {
            total += remote.save_run(&o.name, &o.run)?;
        }
        Ok(total)
    })?;
    let (dup_bytes, dup_ns) = bench(&|| {
        let mut total = 0;
        for o in &report.outputs {
            total += remote.save_run(&format!("{}-b", o.name), &o.run)?;
        }
        Ok(total)
    })?;

    let first = &report.outputs[0].name;
    let t = Instant::now();
    let fetched = remote.load_run(first).map_err(|e| e.to_string())?;
    let fetch_ns = t.elapsed().as_nanos() as u64;
    if fetched.variants.len() != report.outputs[0].run.variants.len() {
        return Err("bench: fetched run lost variants".into());
    }

    let stat = remote.stat_run(first).map_err(|e| e.to_string())?;
    let dedup = stat
        .dedup
        .ok_or("bench: remote stat carried no dedup figures")?;
    let ratio = dedup.ratio();
    handle.shutdown();

    let mb_per_s = |bytes: u64, ns: u64| {
        if ns == 0 {
            0.0
        } else {
            bytes as f64 / 1.0e6 / (ns as f64 / 1.0e9)
        }
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"rr-bench/serve/v1\",\n");
    doc.push_str("  \"mode\": \"full\",\n");
    doc.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    doc.push_str(&format!("  \"dedup_ratio\": {ratio:.4},\n"));
    doc.push_str(&format!(
        "  \"ingest_mb_per_s\": {:.2},\n",
        mb_per_s(cold_bytes, cold_ns)
    ));
    doc.push_str("  \"benches\": [\n");
    doc.push_str(&format!(
        "    {{ \"name\": \"ingest/corpus-cold\", \"bytes\": {cold_bytes}, \"median_ns\": {cold_ns}, \"mb_per_s\": {:.2} }},\n",
        mb_per_s(cold_bytes, cold_ns)
    ));
    doc.push_str(&format!(
        "    {{ \"name\": \"ingest/corpus-dup\", \"bytes\": {dup_bytes}, \"median_ns\": {dup_ns}, \"mb_per_s\": {:.2} }},\n",
        mb_per_s(dup_bytes, dup_ns)
    ));
    doc.push_str(&format!(
        "    {{ \"name\": \"fetch/one-run\", \"median_ns\": {fetch_ns} }}\n"
    ));
    doc.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out).map_err(|e| format!("{out}: {e}"))?;
    f.write_all(doc.as_bytes())
        .map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "bench: ingest {:.1} MB/s cold / {:.1} MB/s dup, dedup {ratio:.2}x, wrote {out}",
        mb_per_s(cold_bytes, cold_ns),
        mb_per_s(dup_bytes, dup_ns)
    );

    if let Some(min) = check_dedup {
        if ratio < min {
            return Err(format!(
                "bench: dedup ratio {ratio:.2}x below required {min:.2}x"
            ));
        }
    }
    Ok(())
}
