//! rr-serve: a content-addressed log-ingest and replay-on-demand
//! service for RelaxReplay runs, plus the clients that make it a
//! drop-in [`RunStore`](rr_sim::RunStore) backend.
//!
//! The pieces:
//!
//! * [`proto`] — the RRSP/v1 length-prefixed, CRC-carrying binary
//!   protocol (no external deps; plain `std::net`).
//! * [`store`] — the on-disk content-addressed chunk store: identical
//!   chunk payloads dedupe to one blob keyed by
//!   `(crc32, rr_hash64)`, runs are catalogs of chunk refs.
//! * [`server`] — the multithreaded TCP server (listener + worker
//!   pool, per-connection staging, atomic seal).
//! * [`client`] — [`Client`] (raw protocol),
//!   [`RemoteStore`] (a `RunStore` over the wire), and the
//!   [`RemoteSink`]/[`RemoteSource`] adapters that let a recorder
//!   stream its log to the server live.
//!
//! Anything that takes a run location accepts either a local path or
//! an `rr://host:port/run` URL; [`open_store`] turns a parsed
//! [`StoreSpec`] into the right backend.

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{Client, RemoteSink, RemoteSinkStats, RemoteSource, RemoteStore};
pub use server::{serve, FaultSpec, ServerConfig, ServerHandle};
pub use store::ChunkStore;

use rr_sim::{RemoteFault, RunStore, StoreError, StoreSpec};

/// A typed rr-serve failure: a [`RemoteFault`] kind plus human detail.
/// This is the error currency of the protocol and server layers; it
/// converts losslessly into [`StoreError::Remote`] at the store seam.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// What went wrong, as the protocol's typed fault taxonomy.
    pub kind: RemoteFault,
    /// Human-readable context.
    pub detail: String,
}

impl ServeError {
    /// A fault of `kind` with `detail` context.
    pub fn new(kind: RemoteFault, detail: impl Into<String>) -> Self {
        ServeError {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for StoreError {
    fn from(e: ServeError) -> Self {
        StoreError::Remote {
            kind: e.kind,
            detail: e.detail,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::new(RemoteFault::Io, e.to_string())
    }
}

/// Opens the store a [`StoreSpec`] names: a [`rr_sim::LocalStore`] for
/// a path, a [`RemoteStore`] for an `rr://` URL.
#[must_use]
pub fn open_store(spec: &StoreSpec) -> Box<dyn RunStore> {
    match spec {
        StoreSpec::Local(path) => Box::new(rr_sim::LocalStore::new(path)),
        StoreSpec::Remote { addr, .. } => Box::new(RemoteStore::new(addr.clone())),
    }
}

/// Parses `spec` (a path or `rr://host:port[/run]` URL) and opens it.
///
/// # Errors
///
/// [`StoreError::BadSpec`] if the string is not a valid location.
pub fn parse_and_open(spec: &str) -> Result<(Box<dyn RunStore>, Option<String>), StoreError> {
    let parsed = StoreSpec::parse(spec)?;
    let run = parsed.run().map(str::to_string);
    Ok((open_store(&parsed), run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_display_and_conversion() {
        let e = ServeError::new(RemoteFault::CorruptBlob, "blob 00ff mismatch");
        assert_eq!(e.to_string(), "corrupt-blob: blob 00ff mismatch");
        let s: StoreError = e.into();
        match s {
            StoreError::Remote { kind, detail } => {
                assert_eq!(kind, RemoteFault::CorruptBlob);
                assert!(detail.contains("00ff"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn open_store_picks_backend() {
        let local = StoreSpec::parse("/tmp/some/dir").expect("local spec");
        assert!(open_store(&local).describe().contains("/tmp/some/dir"));
        let remote = StoreSpec::parse("rr://127.0.0.1:9/r1").expect("remote spec");
        assert_eq!(open_store(&remote).describe(), "rr://127.0.0.1:9");
        let (_, run) = parse_and_open("rr://127.0.0.1:9/r1").expect("parse_and_open");
        assert_eq!(run.as_deref(), Some("r1"));
    }
}
