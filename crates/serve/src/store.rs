//! The content-addressed chunk store behind the rr-serve backend.
//!
//! Layout under the store root:
//!
//! ```text
//! objects/{crc32:08x}{rr_hash64:016x}.chunk   # one blob per distinct chunk payload
//! runs/<name>/catalog.bin                     # RRCT v1: chunk refs + wire versions (CRC32)
//! runs/<name>/truth.bin                       # ground-truth sidecar, verbatim
//! runs/<name>/<label>.ordering                # interval partial order, verbatim
//! runs/<name>/<label>.core<k>.rridx           # skip-index sidecar for the materialized log
//! ```
//!
//! Chunks are keyed by `(crc32, rr_hash64)` of their payload, so the
//! identical chunk appearing in two runs (or two cores, or two recorder
//! variants) lands on disk exactly once; the catalogs reference it. Both
//! halves of the key are verified on every read, so a damaged object
//! surfaces as a typed [`RemoteFault::CorruptBlob`] — never a misparse
//! downstream.
//!
//! Because wire v3 chunks are self-contained, a materialized `.rrlog` is
//! purely `header ++ (len | payload | crc32)*` over the cataloged refs —
//! byte-identical to what a local `--save-logs` writes for the same run,
//! which is what the round-trip CI job diffs for.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use relaxreplay::wire::{crc32, read_varint, write_varint, MAGIC};
use relaxreplay::{rr_hash64, SkipIndex};
use rr_sim::logdir::check_name;
use rr_sim::RemoteFault;

use crate::proto::{BundleVariant, StatVariant};
use crate::ServeError;

/// Magic tag opening a `catalog.bin`.
const CATALOG_MAGIC: &[u8; 4] = b"RRCT";
/// Catalog format version.
const CATALOG_VERSION: u16 = 1;

/// The content-addressed identity of one chunk payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChunkRef {
    /// CRC32 of the payload (the same checksum the `.rrlog` frame carries).
    pub crc: u32,
    /// FNV-1a 64 of the payload.
    pub hash: u64,
    /// Payload length in bytes.
    pub len: u64,
}

impl ChunkRef {
    /// Computes the ref for a payload.
    #[must_use]
    pub fn of(payload: &[u8]) -> Self {
        ChunkRef {
            crc: crc32(payload),
            hash: rr_hash64(payload),
            len: payload.len() as u64,
        }
    }

    /// The blob's object file name: `{crc:08x}{hash:016x}.chunk`.
    #[must_use]
    pub fn object_name(&self) -> String {
        format!("{:08x}{:016x}.chunk", self.crc, self.hash)
    }
}

/// One (variant, core) log in a catalog: its wire version and chunk refs
/// in sequence order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogCore {
    /// `.rrlog` wire version the chunks were encoded with.
    pub wire_version: u16,
    /// Chunk refs, sequence order.
    pub chunks: Vec<ChunkRef>,
}

/// One recorder variant in a catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogVariant {
    /// The variant's label.
    pub label: String,
    /// Per-core logs, index = core id.
    pub cores: Vec<CatalogCore>,
    /// Whether an `ordering.bin` sidecar is stored alongside.
    pub has_ordering: bool,
}

/// A sealed run's catalog: everything needed to rematerialize its
/// `.rrlog` files from the object store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Catalog {
    /// Recorded core count.
    pub cores: u8,
    /// Variants in sealed order.
    pub variants: Vec<CatalogVariant>,
}

impl Catalog {
    /// Total `.rrlog` bytes the catalog materializes to (headers and
    /// chunk framing included).
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.variants
            .iter()
            .flat_map(|v| &v.cores)
            .map(|c| 7 + c.chunks.iter().map(|r| r.len + 8).sum::<u64>())
            .sum()
    }

    /// Serializes the catalog (RRCT v1, CRC32-closed).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CATALOG_MAGIC);
        out.extend_from_slice(&CATALOG_VERSION.to_le_bytes());
        out.push(self.cores);
        write_varint(&mut out, self.variants.len() as u64);
        for v in &self.variants {
            write_varint(&mut out, v.label.len() as u64);
            out.extend_from_slice(v.label.as_bytes());
            out.push(u8::from(v.has_ordering));
            for c in &v.cores {
                out.extend_from_slice(&c.wire_version.to_le_bytes());
                write_varint(&mut out, c.chunks.len() as u64);
                for r in &c.chunks {
                    out.extend_from_slice(&r.crc.to_le_bytes());
                    out.extend_from_slice(&r.hash.to_le_bytes());
                    write_varint(&mut out, r.len);
                }
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a catalog written by [`Catalog::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`RemoteFault::Catalog`] on any header, CRC, or
    /// structural damage — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let bad = |d: &str| ServeError::new(RemoteFault::Catalog, d.to_string());
        if bytes.len() < 11 || &bytes[..4] != CATALOG_MAGIC {
            return Err(bad("bad catalog header"));
        }
        if u16::from_le_bytes([bytes[4], bytes[5]]) != CATALOG_VERSION {
            return Err(bad("unsupported catalog version"));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(bad("catalog CRC mismatch"));
        }
        let cores = body[6];
        let mut pos = 7usize;
        let varint = |pos: &mut usize| {
            read_varint(body, pos).ok_or_else(|| {
                ServeError::new(RemoteFault::Catalog, "catalog truncated".to_string())
            })
        };
        let nv = varint(&mut pos)?;
        let mut variants = Vec::new();
        for _ in 0..nv {
            let label_len = usize::try_from(varint(&mut pos)?)
                .map_err(|_| bad("catalog label length overflow"))?;
            let end = pos
                .checked_add(label_len)
                .filter(|&e| e < body.len())
                .ok_or_else(|| bad("catalog truncated"))?;
            let label = std::str::from_utf8(&body[pos..end])
                .map_err(|_| bad("catalog label not UTF-8"))?
                .to_string();
            pos = end;
            let has_ordering = match body[pos] {
                0 => false,
                1 => true,
                _ => return Err(bad("catalog ordering flag not 0/1")),
            };
            pos += 1;
            let mut catalog_cores = Vec::new();
            for _ in 0..cores {
                let wv = body
                    .get(pos..pos + 2)
                    .ok_or_else(|| bad("catalog truncated"))?;
                let wire_version = u16::from_le_bytes(wv.try_into().expect("2 bytes"));
                pos += 2;
                let n = varint(&mut pos)?;
                let mut chunks = Vec::new();
                for _ in 0..n {
                    let raw = body
                        .get(pos..pos + 12)
                        .ok_or_else(|| bad("catalog truncated"))?;
                    let crc = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes"));
                    let hash = u64::from_le_bytes(raw[4..].try_into().expect("8 bytes"));
                    pos += 12;
                    chunks.push(ChunkRef {
                        crc,
                        hash,
                        len: varint(&mut pos)?,
                    });
                }
                catalog_cores.push(CatalogCore {
                    wire_version,
                    chunks,
                });
            }
            variants.push(CatalogVariant {
                label,
                cores: catalog_cores,
                has_ordering,
            });
        }
        if pos != body.len() {
            return Err(bad("catalog has trailing bytes"));
        }
        Ok(Catalog { cores, variants })
    }
}

/// Counter making concurrent temp-file names unique within the process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path, e: &std::io::Error) -> ServeError {
    ServeError::new(RemoteFault::Server, format!("{}: {e}", path.display()))
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync-free rename. Safe under concurrent writers producing identical
/// content (the loser's rename just replaces equal bytes).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    Ok(())
}

/// What [`ChunkStore::seal_run`] needs per variant: the staged refs in
/// sequence order plus the opaque ordering sidecar.
#[derive(Clone, Debug)]
pub struct SealedVariant {
    /// The variant's label.
    pub label: String,
    /// Per-core (wire version, chunk refs), index = core id.
    pub cores: Vec<CatalogCore>,
    /// The `ordering.bin` sidecar bytes, if recorded.
    pub ordering: Option<Vec<u8>>,
}

/// The on-disk content-addressed store. All methods take `&self` and are
/// safe under concurrent use from the server's worker threads: blob
/// writes are idempotent (identical content, atomic rename) and runs
/// become visible only when their catalog is renamed into place.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    root: PathBuf,
}

impl ChunkStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`RemoteFault::Server`] if the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let root = root.into();
        for sub in ["objects", "runs"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        }
        Ok(ChunkStore { root })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, r: &ChunkRef) -> PathBuf {
        self.root.join("objects").join(r.object_name())
    }

    fn run_dir(&self, run: &str) -> PathBuf {
        self.root.join("runs").join(run)
    }

    /// Stores one chunk payload, deduplicating against existing blobs.
    /// Returns the ref and whether an identical blob already existed.
    ///
    /// # Errors
    ///
    /// Returns [`RemoteFault::Server`] on filesystem failure.
    pub fn put_chunk(&self, payload: &[u8]) -> Result<(ChunkRef, bool), ServeError> {
        let r = ChunkRef::of(payload);
        let path = self.object_path(&r);
        if path.is_file() {
            return Ok((r, true));
        }
        write_atomic(&path, payload)?;
        Ok((r, false))
    }

    /// Reads one blob back, verifying length, CRC32, and content hash.
    ///
    /// # Errors
    ///
    /// Returns [`RemoteFault::CorruptBlob`] if the object is missing or
    /// fails any check — stored damage is always typed, never a panic
    /// or a silent misparse.
    pub fn get_blob(&self, r: &ChunkRef) -> Result<Vec<u8>, ServeError> {
        let path = self.object_path(&r.clone());
        let corrupt = |d: String| ServeError::new(RemoteFault::CorruptBlob, d);
        let bytes = fs::read(&path)
            .map_err(|e| corrupt(format!("object {} unreadable: {e}", r.object_name())))?;
        if bytes.len() as u64 != r.len {
            return Err(corrupt(format!(
                "object {} is {} bytes, catalog says {}",
                r.object_name(),
                bytes.len(),
                r.len
            )));
        }
        if crc32(&bytes) != r.crc || rr_hash64(&bytes) != r.hash {
            return Err(corrupt(format!(
                "object {} content does not match its address",
                r.object_name()
            )));
        }
        Ok(bytes)
    }

    /// Publishes a staged run atomically: sidecars and skip-indexes
    /// first, then the catalog rename that makes the run visible.
    /// Re-sealing an identical run is idempotent; sealing a different
    /// run under an existing name is a [`RemoteFault::Conflict`].
    ///
    /// # Errors
    ///
    /// Returns [`RemoteFault::BadName`] for unusable names,
    /// [`RemoteFault::Conflict`] for divergent re-seals,
    /// [`RemoteFault::CorruptBlob`] if a referenced blob fails
    /// verification, and [`RemoteFault::Server`] on filesystem failure.
    pub fn seal_run(
        &self,
        run: &str,
        cores: u8,
        variants: Vec<SealedVariant>,
        truth: &[u8],
    ) -> Result<u64, ServeError> {
        check_name(run).map_err(|e| ServeError::new(RemoteFault::BadName, e.to_string()))?;
        for v in &variants {
            check_name(&v.label)
                .map_err(|e| ServeError::new(RemoteFault::BadName, e.to_string()))?;
            if v.cores.len() != usize::from(cores) {
                return Err(ServeError::new(
                    RemoteFault::Protocol,
                    format!(
                        "variant {:?} declares {} cores, run has {cores}",
                        v.label,
                        v.cores.len()
                    ),
                ));
            }
        }
        let catalog = Catalog {
            cores,
            variants: variants
                .iter()
                .map(|v| CatalogVariant {
                    label: v.label.clone(),
                    cores: v.cores.clone(),
                    has_ordering: v.ordering.is_some(),
                })
                .collect(),
        };
        let dir = self.run_dir(run);
        let catalog_path = dir.join("catalog.bin");
        let catalog_bytes = catalog.to_bytes();
        if let Ok(existing) = fs::read(&catalog_path) {
            if existing == catalog_bytes {
                return Ok(catalog.log_bytes());
            }
            return Err(ServeError::new(
                RemoteFault::Conflict,
                format!("run {run:?} already sealed with different contents"),
            ));
        }
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        write_atomic(&dir.join("truth.bin"), truth)?;
        for v in &variants {
            if let Some(ordering) = &v.ordering {
                write_atomic(&dir.join(format!("{}.ordering", v.label)), ordering)?;
            }
            // Build and persist the skip-index sidecars now, from the
            // same materialized bytes GetRun will serve: replay clients
            // get range-parallel decode without a first-touch rebuild.
            for (k, core) in v.cores.iter().enumerate() {
                let bytes = self.assemble_core(core, k as u8)?;
                if let Ok(index) = SkipIndex::build(&bytes) {
                    write_atomic(
                        &dir.join(format!("{}.core{k}.rridx", v.label)),
                        &index.to_bytes(),
                    )?;
                }
            }
        }
        write_atomic(&catalog_path, &catalog_bytes)?;
        Ok(catalog.log_bytes())
    }

    /// Loads a sealed run's catalog.
    ///
    /// # Errors
    ///
    /// [`RemoteFault::UnknownRun`] if the run was never sealed;
    /// [`RemoteFault::Catalog`] if the catalog is damaged.
    pub fn catalog(&self, run: &str) -> Result<Catalog, ServeError> {
        check_name(run).map_err(|e| ServeError::new(RemoteFault::BadName, e.to_string()))?;
        let path = self.run_dir(run).join("catalog.bin");
        let bytes = fs::read(&path).map_err(|_| {
            ServeError::new(RemoteFault::UnknownRun, format!("no sealed run {run:?}"))
        })?;
        Catalog::from_bytes(&bytes)
    }

    /// Materializes one (variant, core) `.rrlog` file from the object
    /// store: header, then each cataloged chunk reframed as
    /// `len | payload | crc32`.
    ///
    /// # Errors
    ///
    /// [`RemoteFault::CorruptBlob`] if any referenced blob fails
    /// verification.
    pub fn assemble_core(&self, core: &CatalogCore, core_id: u8) -> Result<Vec<u8>, ServeError> {
        let total: u64 = 7 + core.chunks.iter().map(|r| r.len + 8).sum::<u64>();
        let mut out = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&core.wire_version.to_le_bytes());
        out.push(core_id);
        for r in &core.chunks {
            let payload = self.get_blob(r)?;
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&r.crc.to_le_bytes());
        }
        Ok(out)
    }

    /// Materializes a whole run as a [`BundleVariant`] list plus the
    /// truth sidecar — the body of a `RunBundle` response.
    ///
    /// # Errors
    ///
    /// As [`ChunkStore::catalog`] and [`ChunkStore::assemble_core`];
    /// missing sidecars are [`RemoteFault::Catalog`].
    pub fn assemble_run(&self, run: &str) -> Result<(u8, Vec<BundleVariant>, Vec<u8>), ServeError> {
        let catalog = self.catalog(run)?;
        let dir = self.run_dir(run);
        let truth = fs::read(dir.join("truth.bin")).map_err(|e| {
            ServeError::new(
                RemoteFault::Catalog,
                format!("run {run:?} truth sidecar unreadable: {e}"),
            )
        })?;
        let mut variants = Vec::new();
        for v in &catalog.variants {
            let mut logs = Vec::new();
            let mut indexes = Vec::new();
            for (k, core) in v.cores.iter().enumerate() {
                logs.push(self.assemble_core(core, k as u8)?);
                indexes.push(
                    fs::read(dir.join(format!("{}.core{k}.rridx", v.label))).unwrap_or_default(),
                );
            }
            let ordering = if v.has_ordering {
                Some(
                    fs::read(dir.join(format!("{}.ordering", v.label))).map_err(|e| {
                        ServeError::new(
                            RemoteFault::Catalog,
                            format!("run {run:?} ordering sidecar unreadable: {e}"),
                        )
                    })?,
                )
            } else {
                None
            };
            variants.push(BundleVariant {
                label: v.label.clone(),
                logs,
                indexes,
                ordering,
            });
        }
        Ok((catalog.cores, variants, truth))
    }

    /// Names of every sealed run, sorted.
    ///
    /// # Errors
    ///
    /// [`RemoteFault::Server`] if the runs directory cannot be read.
    pub fn list_runs(&self) -> Result<Vec<String>, ServeError> {
        let dir = self.root.join("runs");
        let mut names = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_err(&dir, &e))? {
            let entry = entry.map_err(|e| io_err(&dir, &e))?;
            let path = entry.path();
            if path.is_dir() && path.join("catalog.bin").is_file() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Stats one run, verifying every blob it references (a damaged
    /// object surfaces here as [`RemoteFault::CorruptBlob`] before any
    /// replay is attempted).
    ///
    /// # Errors
    ///
    /// As [`ChunkStore::catalog`], plus [`RemoteFault::CorruptBlob`].
    pub fn stat_run(&self, run: &str) -> Result<(u8, Vec<StatVariant>, u64), ServeError> {
        let catalog = self.catalog(run)?;
        let mut variants = Vec::new();
        for v in &catalog.variants {
            let mut chunks = 0u64;
            let mut log_bytes = 0u64;
            for core in &v.cores {
                for r in &core.chunks {
                    self.get_blob(r)?;
                }
                chunks += core.chunks.len() as u64;
                log_bytes += 7 + core.chunks.iter().map(|r| r.len + 8).sum::<u64>();
            }
            variants.push(StatVariant {
                label: v.label.clone(),
                chunks,
                log_bytes,
                has_ordering: v.has_ordering,
            });
        }
        let truth_bytes = fs::metadata(self.run_dir(run).join("truth.bin"))
            .map(|m| m.len())
            .unwrap_or(0);
        Ok((catalog.cores, variants, truth_bytes))
    }

    /// Store-wide dedup accounting: distinct blobs on disk, the bytes
    /// they occupy, and the chunk bytes all catalogs reference.
    ///
    /// # Errors
    ///
    /// [`RemoteFault::Server`] on filesystem failure,
    /// [`RemoteFault::Catalog`] if any catalog is damaged.
    pub fn dedup_stat(&self) -> Result<(u64, u64, u64), ServeError> {
        let objects = self.root.join("objects");
        let mut blobs = 0u64;
        let mut blob_bytes = 0u64;
        for entry in fs::read_dir(&objects).map_err(|e| io_err(&objects, &e))? {
            let entry = entry.map_err(|e| io_err(&objects, &e))?;
            let meta = entry.metadata().map_err(|e| io_err(&objects, &e))?;
            if meta.is_file() && entry.path().extension().is_some_and(|e| e == "chunk") {
                blobs += 1;
                blob_bytes += meta.len();
            }
        }
        let mut logical_bytes = 0u64;
        for run in self.list_runs()? {
            let catalog = self.catalog(&run)?;
            logical_bytes += catalog
                .variants
                .iter()
                .flat_map(|v| &v.cores)
                .flat_map(|c| &c.chunks)
                .map(|r| r.len)
                .sum::<u64>();
        }
        Ok((blobs, blob_bytes, logical_bytes))
    }

    /// The distinct refs a run's catalog references (diagnostics).
    ///
    /// # Errors
    ///
    /// As [`ChunkStore::catalog`].
    pub fn run_refs(&self, run: &str) -> Result<BTreeSet<ChunkRef>, ServeError> {
        let catalog = self.catalog(run)?;
        Ok(catalog
            .variants
            .iter()
            .flat_map(|v| &v.cores)
            .flat_map(|c| &c.chunks)
            .copied()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rr_serve_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_dedups_and_get_verifies() {
        let root = scratch("cas");
        let store = ChunkStore::open(&root).expect("opens");
        let (r1, existed1) = store.put_chunk(b"hello chunk").expect("puts");
        assert!(!existed1);
        let (r2, existed2) = store.put_chunk(b"hello chunk").expect("puts");
        assert!(existed2);
        assert_eq!(r1, r2);
        assert_eq!(store.get_blob(&r1).expect("reads"), b"hello chunk");

        // Damage the blob on disk: reads become a typed CorruptBlob.
        let path = root.join("objects").join(r1.object_name());
        fs::write(&path, b"hello chunk!").expect("overwrite");
        let err = store.get_blob(&r1).expect_err("corrupt");
        assert_eq!(err.kind, RemoteFault::CorruptBlob);
        fs::write(&path, b"hellp chunk").expect("overwrite");
        assert_eq!(
            store.get_blob(&r1).expect_err("corrupt").kind,
            RemoteFault::CorruptBlob
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn catalog_round_trips_and_detects_damage() {
        let catalog = Catalog {
            cores: 2,
            variants: vec![CatalogVariant {
                label: "Opt-4K".into(),
                cores: vec![
                    CatalogCore {
                        wire_version: 3,
                        chunks: vec![ChunkRef {
                            crc: 0xdead_beef,
                            hash: 0x0123_4567_89ab_cdef,
                            len: 4096,
                        }],
                    },
                    CatalogCore {
                        wire_version: 3,
                        chunks: vec![],
                    },
                ],
                has_ordering: true,
            }],
        };
        let bytes = catalog.to_bytes();
        assert_eq!(Catalog::from_bytes(&bytes).expect("decodes"), catalog);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Catalog::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        assert_eq!(catalog.log_bytes(), 7 + 4096 + 8 + 7);
    }

    #[test]
    fn divergent_reseal_conflicts_identical_reseal_is_idempotent() {
        let root = scratch("seal");
        let store = ChunkStore::open(&root).expect("opens");
        let (r, _) = store.put_chunk(b"payload").expect("puts");
        let variants = vec![SealedVariant {
            label: "Base".into(),
            cores: vec![CatalogCore {
                wire_version: 3,
                chunks: vec![r],
            }],
            ordering: None,
        }];
        store
            .seal_run("run-a", 1, variants.clone(), b"truth")
            .expect("seals");
        store
            .seal_run("run-a", 1, variants.clone(), b"truth")
            .expect("idempotent reseal");
        let (r2, _) = store.put_chunk(b"other payload").expect("puts");
        let divergent = vec![SealedVariant {
            label: "Base".into(),
            cores: vec![CatalogCore {
                wire_version: 3,
                chunks: vec![r2],
            }],
            ordering: None,
        }];
        let err = store
            .seal_run("run-a", 1, divergent, b"truth")
            .expect_err("conflict");
        assert_eq!(err.kind, RemoteFault::Conflict);
        let _ = fs::remove_dir_all(&root);
    }
}
