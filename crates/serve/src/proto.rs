//! RRSP/v1 — the RelaxReplay serve protocol.
//!
//! A length-prefixed binary framing over any ordered byte stream
//! (TCP in production, an in-memory pipe in tests):
//!
//! ```text
//! frame := u32 LE payload_len | payload | u32 LE crc32(payload)
//! payload := u8 msg_type | body
//! ```
//!
//! The CRC closes the whole payload (type byte included), so a flipped
//! bit anywhere — length, type, or body — surfaces as a typed
//! [`WireError`](relaxreplay::WireError)-style failure on the receiver
//! instead of a misparse. Bodies are encoded with the same varint +
//! length-prefixed-bytes vocabulary as the `.rrlog` wire format, so the
//! whole protocol shares one codec idiom with the artifacts it ships.
//!
//! Requests travel client → server, each answered by exactly one
//! response (the matching ack, or [`Msg::Error`]). Chunk payloads ride
//! verbatim: a [`Msg::PutChunk`] body carries the exact bytes that sit
//! between a chunk's length prefix and trailing CRC in an `.rrlog`
//! file, which is what makes server-side reassembly byte-identical to a
//! local save.

use std::io::{Read, Write};

use relaxreplay::wire::{crc32, read_varint, write_varint};

use crate::ServeError;
use rr_sim::RemoteFault;

/// Protocol version spoken by this build.
pub const PROTO_VERSION: u16 = 1;

/// Upper bound on a single frame's payload, guarding both sides against
/// a corrupt or hostile length prefix committing them to a huge
/// allocation. 256 MiB comfortably exceeds any real chunk or bundle.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// One per-(variant, core) log within a [`Msg::SealRun`] declaration:
/// how many chunks were staged and what wire version framed them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealCore {
    /// `.rrlog` wire version the chunks were encoded with.
    pub wire_version: u16,
    /// Chunks staged for this (variant, core), sequence 0..n.
    pub chunks: u64,
}

/// One variant within a [`Msg::SealRun`] declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealVariant {
    /// The variant's label (a checked path-safe name).
    pub label: String,
    /// Per-core chunk declarations, index = core id.
    pub cores: Vec<SealCore>,
    /// The `ordering.bin` sidecar bytes, verbatim, when the variant was
    /// recorded with an interval partial order.
    pub ordering: Option<Vec<u8>>,
}

/// One variant of a [`Msg::RunBundle`] response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleVariant {
    /// The variant's label.
    pub label: String,
    /// Complete `.rrlog` files (header + framed chunks), index = core id.
    pub logs: Vec<Vec<u8>>,
    /// `.rridx` skip-index sidecars aligned with `logs` (empty bytes =
    /// no index stored).
    pub indexes: Vec<Vec<u8>>,
    /// The `ordering.bin` sidecar bytes, verbatim, if present.
    pub ordering: Option<Vec<u8>>,
}

/// Per-variant sizing inside a [`Msg::StatAck`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatVariant {
    /// The variant's label.
    pub label: String,
    /// Chunks across all cores.
    pub chunks: u64,
    /// Materialized `.rrlog` bytes across all cores.
    pub log_bytes: u64,
    /// Whether an ordering sidecar is stored.
    pub has_ordering: bool,
}

/// Every RRSP/v1 message. Requests use low type codes, responses the
/// same code with the top bit set; [`Msg::Error`] (0x7F) answers any
/// request that failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Client hello: the protocol version it speaks.
    Hello {
        /// Client's protocol version.
        version: u16,
    },
    /// Server accepts the connection at `version`.
    HelloAck {
        /// Version the conversation will use.
        version: u16,
    },
    /// Stage one chunk of one (run, variant, core) log.
    PutChunk {
        /// Run being assembled.
        run: String,
        /// Variant label.
        variant: String,
        /// Core id.
        core: u8,
        /// Chunk sequence number within the (variant, core) log, from 0.
        seq: u64,
        /// Wire version of the `.rrlog` the chunk came from.
        wire_version: u16,
        /// The chunk payload, verbatim (no length prefix, no CRC).
        payload: Vec<u8>,
    },
    /// Chunk accepted.
    PutAck {
        /// True when an identical blob already existed (dedup hit).
        dedup: bool,
    },
    /// Declare a staged run complete and publish it atomically.
    SealRun {
        /// Run name.
        run: String,
        /// Recorded core count.
        cores: u8,
        /// Per-variant declarations; staged chunks must match exactly.
        variants: Vec<SealVariant>,
        /// The `truth.bin` ground-truth sidecar, verbatim.
        truth: Vec<u8>,
    },
    /// Run sealed and visible.
    SealAck {
        /// Logical `.rrlog` bytes the run materializes to.
        log_bytes: u64,
    },
    /// Fetch a complete run.
    GetRun {
        /// Run name.
        run: String,
    },
    /// A complete run: every variant's reassembled `.rrlog` files plus
    /// sidecars.
    RunBundle {
        /// Recorded core count.
        cores: u8,
        /// Every variant, in sealed order.
        variants: Vec<BundleVariant>,
        /// The `truth.bin` sidecar, verbatim.
        truth: Vec<u8>,
    },
    /// List sealed runs.
    ListRuns,
    /// The sealed run names, sorted.
    ListAck {
        /// Run names.
        runs: Vec<String>,
    },
    /// Stat one run (verifies every referenced blob).
    Stat {
        /// Run name.
        run: String,
    },
    /// The run's sizing plus store-wide dedup accounting.
    StatAck {
        /// Recorded core count.
        cores: u8,
        /// Per-variant sizing.
        variants: Vec<StatVariant>,
        /// `truth.bin` size.
        truth_bytes: u64,
        /// Distinct blobs in the store.
        blobs: u64,
        /// Bytes those blobs occupy.
        blob_bytes: u64,
        /// Chunk bytes all catalogs reference.
        logical_bytes: u64,
    },
    /// Fetch a byte range of one reassembled `.rrlog` file
    /// (`len == u64::MAX` = to end of file).
    GetRange {
        /// Run name.
        run: String,
        /// Variant label.
        variant: String,
        /// Core id.
        core: u8,
        /// Byte offset into the materialized file.
        offset: u64,
        /// Bytes to return (`u64::MAX` = the rest of the file).
        len: u64,
    },
    /// The requested bytes.
    RangeData {
        /// The bytes, possibly shorter than requested at end of file.
        bytes: Vec<u8>,
    },
    /// Any request's failure, with the fault category preserved.
    Error {
        /// What kind of failure.
        kind: RemoteFault,
        /// Human-readable detail.
        detail: String,
    },
}

const T_HELLO: u8 = 0x01;
const T_PUT_CHUNK: u8 = 0x02;
const T_SEAL_RUN: u8 = 0x03;
const T_GET_RUN: u8 = 0x04;
const T_LIST_RUNS: u8 = 0x05;
const T_STAT: u8 = 0x06;
const T_GET_RANGE: u8 = 0x07;
const T_HELLO_ACK: u8 = 0x81;
const T_PUT_ACK: u8 = 0x82;
const T_SEAL_ACK: u8 = 0x83;
const T_RUN_BUNDLE: u8 = 0x84;
const T_LIST_ACK: u8 = 0x85;
const T_STAT_ACK: u8 = 0x86;
const T_RANGE_DATA: u8 = 0x87;
const T_ERROR: u8 = 0x7f;

fn fault_code(kind: RemoteFault) -> u8 {
    match kind {
        RemoteFault::Connect => 0,
        RemoteFault::Io => 1,
        RemoteFault::Protocol => 2,
        RemoteFault::UnsupportedVersion => 3,
        RemoteFault::UnknownRun => 4,
        RemoteFault::BadName => 5,
        RemoteFault::Conflict => 6,
        RemoteFault::CorruptBlob => 7,
        RemoteFault::Catalog => 8,
        RemoteFault::Server => 9,
    }
}

fn fault_from_code(code: u8) -> Option<RemoteFault> {
    Some(match code {
        0 => RemoteFault::Connect,
        1 => RemoteFault::Io,
        2 => RemoteFault::Protocol,
        3 => RemoteFault::UnsupportedVersion,
        4 => RemoteFault::UnknownRun,
        5 => RemoteFault::BadName,
        6 => RemoteFault::Conflict,
        7 => RemoteFault::CorruptBlob,
        8 => RemoteFault::Catalog,
        9 => RemoteFault::Server,
        _ => return None,
    })
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_opt_bytes(out: &mut Vec<u8>, bytes: Option<&[u8]>) {
    match bytes {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn truncated() -> ServeError {
        ServeError::new(RemoteFault::Protocol, "frame body truncated")
    }

    fn varint(&mut self) -> Result<u64, ServeError> {
        read_varint(self.buf, &mut self.pos).ok_or_else(Self::truncated)
    }

    fn byte(&mut self) -> Result<u8, ServeError> {
        let b = *self.buf.get(self.pos).ok_or_else(Self::truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        let lo = self.byte()?;
        let hi = self.byte()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ServeError> {
        let len = usize::try_from(self.varint()?).map_err(|_| Self::truncated())?;
        if len > MAX_FRAME_BYTES {
            return Err(Self::truncated());
        }
        let end = self.pos.checked_add(len).ok_or_else(Self::truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or_else(Self::truncated)?;
        self.pos = end;
        Ok(slice.to_vec())
    }

    fn string(&mut self) -> Result<String, ServeError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| ServeError::new(RemoteFault::Protocol, "frame string not UTF-8"))
    }

    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            _ => Err(ServeError::new(
                RemoteFault::Protocol,
                "bad option tag in frame body",
            )),
        }
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::new(
                RemoteFault::Protocol,
                "frame body has trailing bytes",
            ))
        }
    }
}

impl Msg {
    /// Serializes the message to a frame payload (type byte + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Hello { version } => {
                out.push(T_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Msg::HelloAck { version } => {
                out.push(T_HELLO_ACK);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Msg::PutChunk {
                run,
                variant,
                core,
                seq,
                wire_version,
                payload,
            } => {
                out.push(T_PUT_CHUNK);
                put_str(&mut out, run);
                put_str(&mut out, variant);
                out.push(*core);
                write_varint(&mut out, *seq);
                out.extend_from_slice(&wire_version.to_le_bytes());
                put_bytes(&mut out, payload);
            }
            Msg::PutAck { dedup } => {
                out.push(T_PUT_ACK);
                out.push(u8::from(*dedup));
            }
            Msg::SealRun {
                run,
                cores,
                variants,
                truth,
            } => {
                out.push(T_SEAL_RUN);
                put_str(&mut out, run);
                out.push(*cores);
                write_varint(&mut out, variants.len() as u64);
                for v in variants {
                    put_str(&mut out, &v.label);
                    write_varint(&mut out, v.cores.len() as u64);
                    for c in &v.cores {
                        out.extend_from_slice(&c.wire_version.to_le_bytes());
                        write_varint(&mut out, c.chunks);
                    }
                    put_opt_bytes(&mut out, v.ordering.as_deref());
                }
                put_bytes(&mut out, truth);
            }
            Msg::SealAck { log_bytes } => {
                out.push(T_SEAL_ACK);
                write_varint(&mut out, *log_bytes);
            }
            Msg::GetRun { run } => {
                out.push(T_GET_RUN);
                put_str(&mut out, run);
            }
            Msg::RunBundle {
                cores,
                variants,
                truth,
            } => {
                out.push(T_RUN_BUNDLE);
                out.push(*cores);
                write_varint(&mut out, variants.len() as u64);
                for v in variants {
                    put_str(&mut out, &v.label);
                    write_varint(&mut out, v.logs.len() as u64);
                    for log in &v.logs {
                        put_bytes(&mut out, log);
                    }
                    for idx in &v.indexes {
                        put_bytes(&mut out, idx);
                    }
                    put_opt_bytes(&mut out, v.ordering.as_deref());
                }
                put_bytes(&mut out, truth);
            }
            Msg::ListRuns => out.push(T_LIST_RUNS),
            Msg::ListAck { runs } => {
                out.push(T_LIST_ACK);
                write_varint(&mut out, runs.len() as u64);
                for r in runs {
                    put_str(&mut out, r);
                }
            }
            Msg::Stat { run } => {
                out.push(T_STAT);
                put_str(&mut out, run);
            }
            Msg::StatAck {
                cores,
                variants,
                truth_bytes,
                blobs,
                blob_bytes,
                logical_bytes,
            } => {
                out.push(T_STAT_ACK);
                out.push(*cores);
                write_varint(&mut out, variants.len() as u64);
                for v in variants {
                    put_str(&mut out, &v.label);
                    write_varint(&mut out, v.chunks);
                    write_varint(&mut out, v.log_bytes);
                    out.push(u8::from(v.has_ordering));
                }
                write_varint(&mut out, *truth_bytes);
                write_varint(&mut out, *blobs);
                write_varint(&mut out, *blob_bytes);
                write_varint(&mut out, *logical_bytes);
            }
            Msg::GetRange {
                run,
                variant,
                core,
                offset,
                len,
            } => {
                out.push(T_GET_RANGE);
                put_str(&mut out, run);
                put_str(&mut out, variant);
                out.push(*core);
                write_varint(&mut out, *offset);
                write_varint(&mut out, *len);
            }
            Msg::RangeData { bytes } => {
                out.push(T_RANGE_DATA);
                put_bytes(&mut out, bytes);
            }
            Msg::Error { kind, detail } => {
                out.push(T_ERROR);
                out.push(fault_code(*kind));
                put_str(&mut out, detail);
            }
        }
        out
    }

    /// Parses a frame payload produced by [`Msg::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] with [`RemoteFault::Protocol`] on any
    /// unknown type, truncation, or trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Msg, ServeError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or_else(|| ServeError::new(RemoteFault::Protocol, "empty frame payload"))?;
        let mut r = BodyReader::new(body);
        let msg = match tag {
            T_HELLO => Msg::Hello { version: r.u16()? },
            T_HELLO_ACK => Msg::HelloAck { version: r.u16()? },
            T_PUT_CHUNK => Msg::PutChunk {
                run: r.string()?,
                variant: r.string()?,
                core: r.byte()?,
                seq: r.varint()?,
                wire_version: r.u16()?,
                payload: r.bytes()?,
            },
            T_PUT_ACK => Msg::PutAck {
                dedup: r.byte()? != 0,
            },
            T_SEAL_RUN => {
                let run = r.string()?;
                let cores = r.byte()?;
                let nv = r.varint()?;
                let mut variants = Vec::new();
                for _ in 0..nv {
                    let label = r.string()?;
                    let nc = r.varint()?;
                    let mut seal_cores = Vec::new();
                    for _ in 0..nc {
                        seal_cores.push(SealCore {
                            wire_version: r.u16()?,
                            chunks: r.varint()?,
                        });
                    }
                    variants.push(SealVariant {
                        label,
                        cores: seal_cores,
                        ordering: r.opt_bytes()?,
                    });
                }
                Msg::SealRun {
                    run,
                    cores,
                    variants,
                    truth: r.bytes()?,
                }
            }
            T_SEAL_ACK => Msg::SealAck {
                log_bytes: r.varint()?,
            },
            T_GET_RUN => Msg::GetRun { run: r.string()? },
            T_RUN_BUNDLE => {
                let cores = r.byte()?;
                let nv = r.varint()?;
                let mut variants = Vec::new();
                for _ in 0..nv {
                    let label = r.string()?;
                    let nl = r.varint()?;
                    let mut logs = Vec::new();
                    for _ in 0..nl {
                        logs.push(r.bytes()?);
                    }
                    let mut indexes = Vec::new();
                    for _ in 0..nl {
                        indexes.push(r.bytes()?);
                    }
                    variants.push(BundleVariant {
                        label,
                        logs,
                        indexes,
                        ordering: r.opt_bytes()?,
                    });
                }
                Msg::RunBundle {
                    cores,
                    variants,
                    truth: r.bytes()?,
                }
            }
            T_LIST_RUNS => Msg::ListRuns,
            T_LIST_ACK => {
                let n = r.varint()?;
                let mut runs = Vec::new();
                for _ in 0..n {
                    runs.push(r.string()?);
                }
                Msg::ListAck { runs }
            }
            T_STAT => Msg::Stat { run: r.string()? },
            T_STAT_ACK => {
                let cores = r.byte()?;
                let nv = r.varint()?;
                let mut variants = Vec::new();
                for _ in 0..nv {
                    variants.push(StatVariant {
                        label: r.string()?,
                        chunks: r.varint()?,
                        log_bytes: r.varint()?,
                        has_ordering: r.byte()? != 0,
                    });
                }
                Msg::StatAck {
                    cores,
                    variants,
                    truth_bytes: r.varint()?,
                    blobs: r.varint()?,
                    blob_bytes: r.varint()?,
                    logical_bytes: r.varint()?,
                }
            }
            T_GET_RANGE => Msg::GetRange {
                run: r.string()?,
                variant: r.string()?,
                core: r.byte()?,
                offset: r.varint()?,
                len: r.varint()?,
            },
            T_RANGE_DATA => Msg::RangeData { bytes: r.bytes()? },
            T_ERROR => {
                let code = r.byte()?;
                let kind = fault_from_code(code).ok_or_else(|| {
                    ServeError::new(RemoteFault::Protocol, "unknown error fault code")
                })?;
                Msg::Error {
                    kind,
                    detail: r.string()?,
                }
            }
            other => {
                return Err(ServeError::new(
                    RemoteFault::Protocol,
                    format!("unknown frame type 0x{other:02x}"),
                ))
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Writes one framed message to `w`.
///
/// # Errors
///
/// Returns [`RemoteFault::Io`] if the transport fails.
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> Result<(), ServeError> {
    let payload = msg.encode();
    let len = u32::try_from(payload.len())
        .map_err(|_| ServeError::new(RemoteFault::Protocol, "frame payload exceeds u32"))?;
    let io = |e: std::io::Error| ServeError::new(RemoteFault::Io, format!("send failed: {e}"));
    // One write per frame: three small writes would interact with
    // Nagle + delayed ACK and stall every request by tens of ms.
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&frame).map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

/// Reads one framed message from `r`, verifying the CRC.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between messages).
///
/// # Errors
///
/// Returns [`RemoteFault::Io`] on transport failure or mid-frame EOF,
/// [`RemoteFault::Protocol`] on oversized frames, CRC mismatch, or
/// unparseable payloads.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Msg>, ServeError> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < 4 {
                let n = r
                    .read(&mut len_bytes[got..])
                    .map_err(|e| ServeError::new(RemoteFault::Io, format!("recv failed: {e}")))?;
                if n == 0 {
                    return Err(ServeError::new(
                        RemoteFault::Io,
                        "connection closed mid-frame",
                    ));
                }
                got += n;
            }
        }
        Err(e) => {
            return Err(ServeError::new(
                RemoteFault::Io,
                format!("recv failed: {e}"),
            ))
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(ServeError::new(
            RemoteFault::Protocol,
            format!("frame payload length {len} out of range"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut crc_bytes = [0u8; 4];
    let io = |e: std::io::Error| ServeError::new(RemoteFault::Io, format!("recv failed: {e}"));
    r.read_exact(&mut payload).map_err(io)?;
    r.read_exact(&mut crc_bytes).map_err(io)?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(ServeError::new(RemoteFault::Protocol, "frame CRC mismatch"));
    }
    Msg::decode(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Msg) {
        let mut wire = Vec::new();
        write_frame(&mut wire, msg).expect("writes");
        let back = read_frame(&mut wire.as_slice())
            .expect("reads")
            .expect("one frame");
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(&Msg::Hello { version: 1 });
        round_trip(&Msg::HelloAck { version: 1 });
        round_trip(&Msg::PutChunk {
            run: "fft".into(),
            variant: "Opt-4K".into(),
            core: 3,
            seq: 17,
            wire_version: 3,
            payload: vec![0xab; 300],
        });
        round_trip(&Msg::PutAck { dedup: true });
        round_trip(&Msg::SealRun {
            run: "fft".into(),
            cores: 2,
            variants: vec![SealVariant {
                label: "Opt-4K".into(),
                cores: vec![
                    SealCore {
                        wire_version: 3,
                        chunks: 5,
                    },
                    SealCore {
                        wire_version: 3,
                        chunks: 0,
                    },
                ],
                ordering: Some(vec![1, 2, 3]),
            }],
            truth: vec![9, 9],
        });
        round_trip(&Msg::SealAck { log_bytes: 1 << 40 });
        round_trip(&Msg::GetRun { run: "fft".into() });
        round_trip(&Msg::RunBundle {
            cores: 1,
            variants: vec![BundleVariant {
                label: "Base".into(),
                logs: vec![vec![1, 2]],
                indexes: vec![vec![]],
                ordering: None,
            }],
            truth: vec![7],
        });
        round_trip(&Msg::ListRuns);
        round_trip(&Msg::ListAck {
            runs: vec!["a".into(), "b".into()],
        });
        round_trip(&Msg::Stat { run: "a".into() });
        round_trip(&Msg::StatAck {
            cores: 4,
            variants: vec![StatVariant {
                label: "Base".into(),
                chunks: 9,
                log_bytes: 1234,
                has_ordering: true,
            }],
            truth_bytes: 55,
            blobs: 8,
            blob_bytes: 4096,
            logical_bytes: 8192,
        });
        round_trip(&Msg::GetRange {
            run: "a".into(),
            variant: "Base".into(),
            core: 0,
            offset: 7,
            len: u64::MAX,
        });
        round_trip(&Msg::RangeData {
            bytes: vec![0; 100],
        });
        round_trip(&Msg::Error {
            kind: RemoteFault::CorruptBlob,
            detail: "object 0123 damaged".into(),
        });
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Msg::ListRuns).expect("writes");
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let res = read_frame(&mut bad.as_slice());
            assert!(
                res.is_err() || res.as_ref().ok().and_then(|m| m.as_ref()) != Some(&Msg::ListRuns),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        let mut wire = Vec::new();
        write_frame(&mut wire, &Msg::ListRuns).expect("writes");
        let mut cut = &wire[..wire.len() - 2];
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut wire.as_slice()).expect_err("rejected");
        assert_eq!(err.kind, RemoteFault::Protocol);
    }
}
