//! The rr-serve TCP server: a `std::net` listener feeding a fixed pool
//! of worker threads (the sweep-engine shape — the workspace is offline,
//! so no async runtime), each worker owning one client connection at a
//! time and speaking RRSP/v1 over it.
//!
//! Ingest isolation: every connection stages its `PutChunk`s privately
//! and only `SealRun` publishes them — atomically, via the catalog
//! rename in [`ChunkStore::seal_run`]. Four recorders streaming four
//! runs concurrently therefore cannot interleave: blobs dedup freely
//! across connections (identical content, idempotent writes), but run
//! *membership* is decided by each connection's own staging table.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rr_sim::logdir::check_name;
use rr_sim::RemoteFault;

use crate::proto::{self, Msg, SealVariant, PROTO_VERSION};
use crate::store::{CatalogCore, ChunkRef, ChunkStore, SealedVariant};
use crate::ServeError;

/// Fault injection for the server, driven by the sink-fault regression
/// tests: after accepting `kill_after_chunks` `PutChunk` frames on a
/// connection, the server drops that socket without a response —
/// exactly what a crashed backend looks like to a recorder mid-stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultSpec {
    /// Kill each connection after this many accepted chunks
    /// (`None` = never).
    pub kill_after_chunks: Option<u64>,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Store root directory.
    pub root: PathBuf,
    /// Worker threads (connections served concurrently). 0 = available
    /// parallelism, at least 4 so the concurrent-ingest guarantee holds
    /// even on small hosts.
    pub workers: usize,
    /// Fault injection (tests only).
    pub fault: FaultSpec,
}

impl ServerConfig {
    /// A production config for `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            root: root.into(),
            workers: 0,
            fault: FaultSpec::default(),
        }
    }

    /// The worker count `serve` will actually spawn (resolving the
    /// `0 = host parallelism, min 4` default).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(4)
    }
}

/// Ingest counters, exposed for the bench harness and logs.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Chunks accepted across all connections.
    pub chunks: AtomicU64,
    /// Chunk payload bytes accepted.
    pub chunk_bytes: AtomicU64,
    /// Chunks that hit an existing blob (dedup).
    pub dedup_hits: AtomicU64,
    /// Runs sealed.
    pub seals: AtomicU64,
}

struct Shared {
    store: ChunkStore,
    fault: FaultSpec,
    stats: ServerStats,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    conns: Mutex<Vec<TcpStream>>,
}

/// A running server: bind, serve, shut down. Dropping the handle
/// without calling [`ServerHandle::shutdown`] leaves the threads
/// serving until process exit (what the `rr-serve` binary wants).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 in tests to get an ephemeral one).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address formatted as an `rr://` URL prefix.
    #[must_use]
    pub fn url(&self) -> String {
        format!("rr://{}", self.addr)
    }

    /// The server's ingest counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Direct access to the underlying store (tests and the bench
    /// harness inspect dedup state through this).
    #[must_use]
    pub fn store(&self) -> &ChunkStore {
        &self.shared.store
    }

    /// Stops accepting, closes every live connection, and joins all
    /// threads. In-flight requests see their sockets shut down.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock workers parked on reads.
        for c in self.shared.conns.lock().expect("conns lock").iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        self.shared.available.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks the calling thread until the server exits (the `rr-serve`
    /// binary's serve loop; only shutdown or process death end it).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts serving RRSP/v1 in background threads.
///
/// # Errors
///
/// Returns [`RemoteFault::Server`] if the address cannot be bound or
/// the store cannot be opened.
pub fn serve(addr: &str, config: ServerConfig) -> Result<ServerHandle, ServeError> {
    let store = ChunkStore::open(&config.root)?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| ServeError::new(RemoteFault::Server, format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| ServeError::new(RemoteFault::Server, format!("local_addr: {e}")))?;
    let shared = Arc::new(Shared {
        store,
        fault: config.fault,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        conns: Mutex::new(Vec::new()),
    });

    let workers = (0..config.effective_workers())
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rr-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("rr-serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Request/response protocol: never batch small frames.
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    accept_shared.conns.lock().expect("conns lock").push(clone);
                }
                accept_shared
                    .queue
                    .lock()
                    .expect("queue lock")
                    .push_back(stream);
                accept_shared.available.notify_one();
            }
            // Wake every worker so they observe shutdown.
            accept_shared.available.notify_all();
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr: local,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                queue = shared.available.wait(queue).expect("queue wait");
            }
        };
        // A protocol error or client disconnect ends this connection
        // only; the worker goes back for the next one.
        let _ = handle_connection(shared, stream);
    }
}

/// One staged core log: wire version plus chunk refs by sequence number.
type StagedLog = (u16, Vec<(u64, ChunkRef)>);

/// One connection's staged-but-unsealed chunks, keyed (run, variant, core).
#[derive(Default)]
struct Staging {
    logs: HashMap<(String, String, u8), StagedLog>,
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) -> Result<(), ServeError> {
    let mut staging = Staging::default();
    let mut accepted_chunks = 0u64;

    // Handshake first: anything else is a protocol error.
    match proto::read_frame(&mut stream)? {
        Some(Msg::Hello { version }) if version == PROTO_VERSION => {
            proto::write_frame(&mut stream, &Msg::HelloAck { version })?;
        }
        Some(Msg::Hello { version }) => {
            let err = Msg::Error {
                kind: RemoteFault::UnsupportedVersion,
                detail: format!("server speaks RRSP/{PROTO_VERSION}, client sent {version}"),
            };
            proto::write_frame(&mut stream, &err)?;
            return Ok(());
        }
        Some(_) | None => return Ok(()),
    }

    while let Some(msg) = proto::read_frame(&mut stream)? {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Msg::PutChunk { .. } = &msg {
            if let Some(kill_after) = shared.fault.kill_after_chunks {
                if accepted_chunks >= kill_after {
                    // Injected crash: drop the socket, no response.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
            }
        }
        let reply = handle_request(shared, &mut staging, msg, &mut accepted_chunks);
        let frame = match reply {
            Ok(m) => m,
            Err(e) => Msg::Error {
                kind: e.kind,
                detail: e.detail,
            },
        };
        proto::write_frame(&mut stream, &frame)?;
    }
    Ok(())
}

fn handle_request(
    shared: &Shared,
    staging: &mut Staging,
    msg: Msg,
    accepted_chunks: &mut u64,
) -> Result<Msg, ServeError> {
    match msg {
        Msg::PutChunk {
            run,
            variant,
            core,
            seq,
            wire_version,
            payload,
        } => {
            check_name(&run).map_err(|e| ServeError::new(RemoteFault::BadName, e.to_string()))?;
            check_name(&variant)
                .map_err(|e| ServeError::new(RemoteFault::BadName, e.to_string()))?;
            let (r, dedup) = shared.store.put_chunk(&payload)?;
            let entry = staging
                .logs
                .entry((run, variant, core))
                .or_insert_with(|| (wire_version, Vec::new()));
            if entry.0 != wire_version {
                return Err(ServeError::new(
                    RemoteFault::Protocol,
                    "wire version changed mid-log",
                ));
            }
            entry.1.push((seq, r));
            *accepted_chunks += 1;
            shared.stats.chunks.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .chunk_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            if dedup {
                shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Msg::PutAck { dedup })
        }
        Msg::SealRun {
            run,
            cores,
            variants,
            truth,
        } => {
            let sealed = collect_staged(staging, &run, cores, &variants)?;
            let log_bytes = shared.store.seal_run(&run, cores, sealed, &truth)?;
            // Sealed chunks leave the staging table; an accidental
            // double-seal over the same connection revalidates cleanly
            // against zero staged chunks only if the run declared zero.
            staging
                .logs
                .retain(|(staged_run, _, _), _| staged_run != &run);
            shared.stats.seals.fetch_add(1, Ordering::Relaxed);
            Ok(Msg::SealAck { log_bytes })
        }
        Msg::GetRun { run } => {
            let (cores, variants, truth) = shared.store.assemble_run(&run)?;
            Ok(Msg::RunBundle {
                cores,
                variants,
                truth,
            })
        }
        Msg::ListRuns => Ok(Msg::ListAck {
            runs: shared.store.list_runs()?,
        }),
        Msg::Stat { run } => {
            let (cores, variants, truth_bytes) = shared.store.stat_run(&run)?;
            let (blobs, blob_bytes, logical_bytes) = shared.store.dedup_stat()?;
            Ok(Msg::StatAck {
                cores,
                variants,
                truth_bytes,
                blobs,
                blob_bytes,
                logical_bytes,
            })
        }
        Msg::GetRange {
            run,
            variant,
            core,
            offset,
            len,
        } => {
            let catalog = shared.store.catalog(&run)?;
            let v = catalog
                .variants
                .iter()
                .find(|v| v.label == variant)
                .ok_or_else(|| {
                    ServeError::new(
                        RemoteFault::UnknownRun,
                        format!("run {run:?} has no variant {variant:?}"),
                    )
                })?;
            let c = v.cores.get(usize::from(core)).ok_or_else(|| {
                ServeError::new(
                    RemoteFault::UnknownRun,
                    format!("variant {variant:?} has no core {core}"),
                )
            })?;
            let file = shared.store.assemble_core(c, core)?;
            let start = usize::try_from(offset).unwrap_or(usize::MAX);
            let start = start.min(file.len());
            let end = if len == u64::MAX {
                file.len()
            } else {
                start
                    .saturating_add(usize::try_from(len).unwrap_or(usize::MAX))
                    .min(file.len())
            };
            Ok(Msg::RangeData {
                bytes: file[start..end].to_vec(),
            })
        }
        Msg::Hello { .. } => Err(ServeError::new(RemoteFault::Protocol, "duplicate hello")),
        other => Err(ServeError::new(
            RemoteFault::Protocol,
            format!("unexpected client frame {other:?}"),
        )),
    }
}

/// Validates a seal declaration against this connection's staging table
/// and produces the store's sealed-variant form: every declared
/// (variant, core) must have exactly its declared chunks staged, with
/// contiguous sequence numbers from 0.
fn collect_staged(
    staging: &mut Staging,
    run: &str,
    cores: u8,
    variants: &[SealVariant],
) -> Result<Vec<SealedVariant>, ServeError> {
    let mut sealed = Vec::new();
    for v in variants {
        if v.cores.len() != usize::from(cores) {
            return Err(ServeError::new(
                RemoteFault::Protocol,
                format!(
                    "variant {:?} declares {} cores, seal says {cores}",
                    v.label,
                    v.cores.len()
                ),
            ));
        }
        let mut catalog_cores = Vec::new();
        for (k, declared) in v.cores.iter().enumerate() {
            let key = (run.to_string(), v.label.clone(), k as u8);
            let (wire_version, mut staged) = match staging.logs.get(&key) {
                Some((wv, refs)) => (*wv, refs.clone()),
                None if declared.chunks == 0 => (declared.wire_version, Vec::new()),
                None => {
                    return Err(ServeError::new(
                        RemoteFault::Protocol,
                        format!(
                            "seal declares {} chunks for {}/core{k} but none were staged \
                             on this connection",
                            declared.chunks, v.label
                        ),
                    ))
                }
            };
            if wire_version != declared.wire_version {
                return Err(ServeError::new(
                    RemoteFault::Protocol,
                    format!("{}/core{k}: staged wire version differs from seal", v.label),
                ));
            }
            staged.sort_by_key(|(seq, _)| *seq);
            if staged.len() as u64 != declared.chunks
                || staged
                    .iter()
                    .enumerate()
                    .any(|(i, (seq, _))| *seq != i as u64)
            {
                return Err(ServeError::new(
                    RemoteFault::Protocol,
                    format!(
                        "{}/core{k}: staged {} chunks, seal declares {} (sequence must be \
                         contiguous from 0)",
                        v.label,
                        staged.len(),
                        declared.chunks
                    ),
                ));
            }
            catalog_cores.push(CatalogCore {
                wire_version,
                chunks: staged.into_iter().map(|(_, r)| r).collect(),
            });
        }
        sealed.push(SealedVariant {
            label: v.label.clone(),
            cores: catalog_cores,
            ordering: v.ordering.clone(),
        });
    }
    Ok(sealed)
}
