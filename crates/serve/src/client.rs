//! RRSP/v1 clients: the raw [`Client`], the [`RemoteStore`] that makes
//! an `rr-serve` backend a drop-in [`RunStore`], and the
//! [`RemoteSink`]/[`RemoteSource`] adapters that plug the network into
//! the recorder's `LogSink`/`LogSource` seam.
//!
//! Saving through [`RemoteStore`] is deliberately byte-deterministic:
//! logs are encoded with the same default `ChunkedWriter` parameters a
//! local `--save-logs` uses, so the server's reassembled `.rrlog` files
//! are byte-identical to the local ones — the round-trip CI job diffs
//! them directly.

use std::io::Cursor;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use relaxreplay::wire::{chunk_spans, encode_chunked};
use relaxreplay::{ChunkedReader, ChunkedWriter, LogEntry, LogSink, LogSource, WireError};
use rr_mem::CoreId;
use rr_sim::logdir::{decode_ordering, decode_truth, encode_ordering, encode_truth};
use rr_sim::{
    DedupStat, RemoteFault, RunResult, RunStat, RunStore, SavedRun, SavedVariant, StoreError,
    VariantStat,
};

use crate::proto::{self, BundleVariant, Msg, SealCore, SealVariant, StatVariant, PROTO_VERSION};
use crate::ServeError;

fn serve_err(e: ServeError) -> StoreError {
    StoreError::Remote {
        kind: e.kind,
        detail: e.detail,
    }
}

/// A connected RRSP/v1 conversation. One request at a time; chunk
/// staging is per-connection on the server, so a whole run's ingest —
/// every variant, every core, the seal — flows over one `Client`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: String,
}

impl Client {
    /// Connects and completes the version handshake.
    ///
    /// # Errors
    ///
    /// [`RemoteFault::Connect`] if the TCP connect fails,
    /// [`RemoteFault::UnsupportedVersion`] or
    /// [`RemoteFault::Protocol`] if the handshake does.
    pub fn connect(addr: &str) -> Result<Self, StoreError> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            StoreError::remote(RemoteFault::Connect, format!("connect {addr}: {e}"))
        })?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            addr: addr.to_string(),
        };
        match client.call(&Msg::Hello {
            version: PROTO_VERSION,
        })? {
            Msg::HelloAck { version } if version == PROTO_VERSION => Ok(client),
            Msg::HelloAck { version } => Err(StoreError::remote(
                RemoteFault::UnsupportedVersion,
                format!("server answered hello with version {version}"),
            )),
            other => Err(StoreError::remote(
                RemoteFault::Protocol,
                format!("unexpected hello response {other:?}"),
            )),
        }
    }

    /// The address this client is connected to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response exchange. Server-reported failures come
    /// back as [`StoreError::Remote`] with their typed fault kind.
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`RemoteFault::Io`].
    pub fn call(&mut self, msg: &Msg) -> Result<Msg, StoreError> {
        proto::write_frame(&mut self.stream, msg).map_err(serve_err)?;
        match proto::read_frame(&mut self.stream).map_err(serve_err)? {
            Some(Msg::Error { kind, detail }) => Err(StoreError::Remote { kind, detail }),
            Some(reply) => Ok(reply),
            None => Err(StoreError::remote(
                RemoteFault::Io,
                format!("{}: server closed the connection", self.addr),
            )),
        }
    }

    fn unexpected(reply: &Msg) -> StoreError {
        StoreError::remote(
            RemoteFault::Protocol,
            format!("unexpected server reply {reply:?}"),
        )
    }

    /// Stages one chunk. Returns whether the blob already existed.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn put_chunk(
        &mut self,
        run: &str,
        variant: &str,
        core: u8,
        seq: u64,
        wire_version: u16,
        payload: &[u8],
    ) -> Result<bool, StoreError> {
        match self.call(&Msg::PutChunk {
            run: run.to_string(),
            variant: variant.to_string(),
            core,
            seq,
            wire_version,
            payload: payload.to_vec(),
        })? {
            Msg::PutAck { dedup } => Ok(dedup),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Seals a staged run. Returns the logical `.rrlog` bytes.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn seal_run(
        &mut self,
        run: &str,
        cores: u8,
        variants: Vec<SealVariant>,
        truth: Vec<u8>,
    ) -> Result<u64, StoreError> {
        match self.call(&Msg::SealRun {
            run: run.to_string(),
            cores,
            variants,
            truth,
        })? {
            Msg::SealAck { log_bytes } => Ok(log_bytes),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches a whole run.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn get_run(&mut self, run: &str) -> Result<(u8, Vec<BundleVariant>, Vec<u8>), StoreError> {
        match self.call(&Msg::GetRun {
            run: run.to_string(),
        })? {
            Msg::RunBundle {
                cores,
                variants,
                truth,
            } => Ok((cores, variants, truth)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Lists sealed runs.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn list_runs(&mut self) -> Result<Vec<String>, StoreError> {
        match self.call(&Msg::ListRuns)? {
            Msg::ListAck { runs } => Ok(runs),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stats one run (the server verifies every referenced blob).
    ///
    /// # Errors
    ///
    /// As [`Client::call`]; a damaged blob is
    /// [`RemoteFault::CorruptBlob`].
    pub fn stat(&mut self, run: &str) -> Result<RunStat, StoreError> {
        match self.call(&Msg::Stat {
            run: run.to_string(),
        })? {
            Msg::StatAck {
                cores,
                variants,
                truth_bytes,
                blobs,
                blob_bytes,
                logical_bytes,
            } => Ok(RunStat {
                name: run.to_string(),
                cores: usize::from(cores),
                variants: variants
                    .into_iter()
                    .map(|v: StatVariant| VariantStat {
                        label: v.label,
                        chunks: v.chunks,
                        log_bytes: v.log_bytes,
                        has_ordering: v.has_ordering,
                    })
                    .collect(),
                truth_bytes,
                dedup: Some(DedupStat {
                    blobs,
                    blob_bytes,
                    logical_bytes,
                }),
            }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches a byte range of one materialized `.rrlog` file
    /// (`len == u64::MAX` = to end).
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn get_range(
        &mut self,
        run: &str,
        variant: &str,
        core: u8,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        match self.call(&Msg::GetRange {
            run: run.to_string(),
            variant: variant.to_string(),
            core,
            offset,
            len,
        })? {
            Msg::RangeData { bytes } => Ok(bytes),
            other => Err(Self::unexpected(&other)),
        }
    }
}

/// The remote [`RunStore`]: an `rr-serve` backend at `addr`, addressed
/// as `rr://addr`. Each operation opens its own connection, so the
/// store is freely shared across threads.
#[derive(Clone, Debug)]
pub struct RemoteStore {
    addr: String,
}

impl RemoteStore {
    /// A store speaking to the server at `addr` (`host:port`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteStore { addr: addr.into() }
    }
}

/// Splits an encoded `.rrlog` byte stream into its chunk payloads.
fn chunk_payloads(bytes: &[u8]) -> Result<(u16, Vec<&[u8]>), StoreError> {
    let (_, version, spans, damage) = chunk_spans(bytes).map_err(|e| {
        StoreError::remote(
            RemoteFault::Protocol,
            format!("encoded log unparseable: {e}"),
        )
    })?;
    if let Some(e) = damage {
        return Err(StoreError::remote(
            RemoteFault::Protocol,
            format!("encoded log truncated: {e}"),
        ));
    }
    let payloads = spans
        .iter()
        .map(|s| &bytes[s.offset + 4..s.offset + 4 + s.payload_bytes])
        .collect();
    Ok((version, payloads))
}

impl RunStore for RemoteStore {
    fn describe(&self) -> String {
        format!("rr://{}", self.addr)
    }

    fn save_run(&self, name: &str, result: &RunResult) -> Result<u64, StoreError> {
        let cores = result.recorded.load_traces.len();
        let cores = u8::try_from(cores).map_err(|_| {
            StoreError::remote(
                RemoteFault::Protocol,
                format!("{cores} cores exceed the protocol's u8 core id"),
            )
        })?;
        let mut client = Client::connect(&self.addr)?;
        let mut seal_variants = Vec::new();
        let mut total_bytes = 0u64;
        for variant in &result.variants {
            let label = variant.spec.label();
            let mut seal_cores = vec![
                SealCore {
                    wire_version: relaxreplay::wire::VERSION,
                    chunks: 0,
                };
                usize::from(cores)
            ];
            for log in &variant.logs {
                // Identical encoder parameters to the local save path:
                // the server's reassembly is byte-identical to
                // `write_rrlog`'s output for the same log.
                let bytes = encode_chunked(log);
                total_bytes += bytes.len() as u64;
                let (wire_version, payloads) = chunk_payloads(&bytes)?;
                let core = log.core.index();
                for (seq, payload) in payloads.iter().enumerate() {
                    client.put_chunk(
                        name,
                        &label,
                        core as u8,
                        seq as u64,
                        wire_version,
                        payload,
                    )?;
                }
                let slot = seal_cores.get_mut(core).ok_or_else(|| {
                    StoreError::remote(
                        RemoteFault::Protocol,
                        format!("log for core {core} exceeds run core count {cores}"),
                    )
                })?;
                *slot = SealCore {
                    wire_version,
                    chunks: payloads.len() as u64,
                };
            }
            seal_variants.push(SealVariant {
                label,
                cores: seal_cores,
                ordering: (!variant.ordering.is_empty())
                    .then(|| encode_ordering(&variant.ordering)),
            });
        }
        client.seal_run(name, cores, seal_variants, encode_truth(&result.recorded))?;
        Ok(total_bytes)
    }

    fn load_run_with(&self, name: &str, workers: usize) -> Result<SavedRun, StoreError> {
        let mut client = Client::connect(&self.addr)?;
        let (cores, variants, truth) = client.get_run(name)?;
        let cores = usize::from(cores);
        let catalog_err = |d: String| StoreError::remote(RemoteFault::Catalog, d);

        // Decode every (variant, core) file; the files are independent
        // streams, so spread them over a scoped pool when asked.
        let files: Vec<&[u8]> = variants
            .iter()
            .flat_map(|v| &v.logs)
            .map(Vec::as_slice)
            .collect();
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let workers = workers.min(files.len()).max(1);
        let decoded: Vec<Result<relaxreplay::IntervalLog, WireError>> = if workers <= 1 {
            files
                .iter()
                .map(|b| relaxreplay::wire::decode_chunked(b))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<Result<relaxreplay::IntervalLog, WireError>>>> =
                files.iter().map(|_| Mutex::new(None)).collect();
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(bytes) = files.get(i) else { break };
                        let res = relaxreplay::wire::decode_chunked(bytes);
                        *slots[i].lock().expect("decode slot") = Some(res);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("decode slot").expect("slot filled"))
                .collect()
        };

        let mut it = decoded.into_iter();
        let mut saved_variants = Vec::new();
        for v in &variants {
            if v.logs.len() != cores {
                return Err(catalog_err(format!(
                    "variant {:?} bundles {} logs for a {cores}-core run",
                    v.label,
                    v.logs.len()
                )));
            }
            let mut logs = Vec::with_capacity(cores);
            for (k, res) in it.by_ref().take(cores).enumerate() {
                let log = res.map_err(|e| {
                    StoreError::remote(
                        RemoteFault::CorruptBlob,
                        format!("{}/core{k}: fetched log failed to decode: {e}", v.label),
                    )
                })?;
                if log.core.index() != k {
                    return Err(catalog_err(format!(
                        "{}/core{k}: fetched log claims core {}",
                        v.label,
                        log.core.index()
                    )));
                }
                logs.push(log);
            }
            let ordering = match &v.ordering {
                None => None,
                Some(bytes) => {
                    let ord = decode_ordering(bytes).map_err(|e| catalog_err(e.to_string()))?;
                    if ord.len() != cores {
                        return Err(catalog_err(
                            "ordering sidecar core count != run cores".to_string(),
                        ));
                    }
                    Some(ord)
                }
            };
            saved_variants.push(SavedVariant {
                label: v.label.clone(),
                logs,
                ordering,
            });
        }
        let recorded = decode_truth(&truth).map_err(|e| catalog_err(e.to_string()))?;
        if recorded.load_traces.len() != cores {
            return Err(catalog_err("truth trace count != run cores".to_string()));
        }
        Ok(SavedRun {
            name: name.to_string(),
            variants: saved_variants,
            recorded,
        })
    }

    fn list_runs(&self) -> Result<Vec<String>, StoreError> {
        Client::connect(&self.addr)?.list_runs()
    }

    fn stat_run(&self, name: &str) -> Result<RunStat, StoreError> {
        Client::connect(&self.addr)?.stat(name)
    }
}

/// A `Write` adapter over a shared byte buffer — how [`RemoteSink`]
/// captures the `ChunkedWriter`'s output to reframe it into `PutChunk`
/// messages.
#[derive(Clone, Debug, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared buf").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A [`LogSink`] that streams a recorder's log to an `rr-serve` backend
/// chunk by chunk, live, over a shared [`Client`].
///
/// ### Failure semantics (the PR 4 sink-fault contract, network form)
///
/// Entry acceptance is synchronous per [`LogSink::emit`], but network
/// durability is per *chunk*. The sink therefore splits its accounting:
///
/// * Entries whose emit returned `Ok` were **accepted** by the sink —
///   the recorder's `streamed_entries` counts exactly these.
/// * [`RemoteSink::acked_entries`] counts the accepted entries whose
///   chunk the server acknowledged — exactly what is durably remote.
/// * If the connection dies, the failing emit returns the error (the
///   recorder latches it, poisons, and keeps the un-emitted suffix
///   buffered), and every accepted-but-unacked entry moves to the
///   [`RemoteSink::unsent_handle`] buffer. Nothing is silently dropped:
///   `server entries ++ unsent ++ recorder buffer` reproduce the full
///   log, and every count is auditable.
pub struct RemoteSink {
    client: Arc<Mutex<Client>>,
    run: String,
    variant: String,
    core: CoreId,
    writer: ChunkedWriter<SharedBuf>,
    buf: Arc<Mutex<Vec<u8>>>,
    pending: Vec<LogEntry>,
    unsent: Arc<Mutex<Vec<LogEntry>>>,
    stats: Arc<RemoteSinkStats>,
    error: Option<WireError>,
}

/// Shared counters a [`RemoteSink`] updates as it streams — readable
/// through [`RemoteSink::stats_handle`] even after the sink is boxed
/// into a recorder (the `FailingSink` handle idiom).
#[derive(Debug, Default)]
pub struct RemoteSinkStats {
    /// Entries whose chunk the server acknowledged.
    pub acked_entries: std::sync::atomic::AtomicU64,
    /// Chunks the server acknowledged.
    pub chunks_sent: std::sync::atomic::AtomicU64,
}

impl RemoteSink {
    /// A sink streaming `run`/`variant`/`core` over `client`, cutting
    /// chunks at the default payload target.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the header write goes to memory); kept
    /// fallible to mirror `ChunkedWriter` construction.
    pub fn new(
        client: Arc<Mutex<Client>>,
        run: impl Into<String>,
        variant: impl Into<String>,
        core: CoreId,
    ) -> Result<Self, WireError> {
        Self::with_chunk_bytes(
            client,
            run,
            variant,
            core,
            relaxreplay::wire::DEFAULT_CHUNK_BYTES,
        )
    }

    /// As [`RemoteSink::new`] with an explicit chunk payload target.
    ///
    /// # Errors
    ///
    /// As [`RemoteSink::new`].
    pub fn with_chunk_bytes(
        client: Arc<Mutex<Client>>,
        run: impl Into<String>,
        variant: impl Into<String>,
        core: CoreId,
        chunk_bytes: usize,
    ) -> Result<Self, WireError> {
        let shared = SharedBuf::default();
        let buf = Arc::clone(&shared.0);
        let writer = ChunkedWriter::with_chunk_bytes(shared, core, chunk_bytes)?;
        // The writer just wrote the 7-byte .rrlog header; the server
        // reframes from the catalog, so only chunk payloads travel.
        buf.lock().expect("shared buf").clear();
        Ok(RemoteSink {
            client,
            run: run.into(),
            variant: variant.into(),
            core,
            writer,
            buf,
            pending: Vec::new(),
            unsent: Arc::default(),
            stats: Arc::default(),
            error: None,
        })
    }

    /// Entries whose chunk the server acknowledged.
    #[must_use]
    pub fn acked_entries(&self) -> u64 {
        self.stats
            .acked_entries
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Chunks the server acknowledged.
    #[must_use]
    pub fn chunks_sent(&self) -> u64 {
        self.stats
            .chunks_sent
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Shared view of the streaming counters; clone before boxing the
    /// sink into a recorder.
    #[must_use]
    pub fn stats_handle(&self) -> Arc<RemoteSinkStats> {
        Arc::clone(&self.stats)
    }

    /// The wire version the sink encodes with (what `SealRun` must
    /// declare).
    #[must_use]
    pub fn wire_version(&self) -> u16 {
        relaxreplay::wire::VERSION
    }

    /// Shared view of entries the sink accepted but could not deliver
    /// before the connection died; clone before boxing the sink away
    /// (the [`FailingSink`](relaxreplay::FailingSink) idiom).
    #[must_use]
    pub fn unsent_handle(&self) -> Arc<Mutex<Vec<LogEntry>>> {
        Arc::clone(&self.unsent)
    }

    /// The latched transport error, if the stream failed.
    #[must_use]
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    /// Sends every complete chunk frame sitting in the capture buffer.
    fn pump(&mut self) -> Result<(), WireError> {
        loop {
            let payload = {
                let mut buf = self.buf.lock().expect("shared buf");
                let Some(len_bytes) = buf.get(..4) else {
                    return Ok(());
                };
                let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
                if buf.len() < 8 + len {
                    return Ok(());
                }
                let payload = buf[4..4 + len].to_vec();
                buf.drain(..8 + len);
                payload
            };
            let seq = self.chunks_sent();
            let sent = self
                .client
                .lock()
                .expect("client lock")
                .put_chunk(
                    &self.run,
                    &self.variant,
                    self.core.index() as u8,
                    seq,
                    self.wire_version(),
                    &payload,
                )
                .map(|_| ());
            match sent {
                Ok(()) => {
                    use std::sync::atomic::Ordering::Relaxed;
                    self.stats.chunks_sent.fetch_add(1, Relaxed);
                    self.stats
                        .acked_entries
                        .fetch_add(self.pending.len() as u64, Relaxed);
                    self.pending.clear();
                }
                Err(e) => {
                    let err = WireError::Io(format!("rr-serve stream failed: {e}"));
                    self.error = Some(err.clone());
                    self.unsent
                        .lock()
                        .expect("unsent lock")
                        .append(&mut self.pending);
                    return Err(err);
                }
            }
        }
    }
}

impl LogSink for RemoteSink {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        self.writer.emit(entry)?;
        self.pending.push(*entry);
        match self.pump() {
            Ok(()) => Ok(()),
            Err(e) => {
                // This emit returns Err, so the recorder treats its own
                // entry as rejected and keeps it buffered. Drop it from
                // the unsent buffer (it is necessarily the last entry
                // pump moved there) so every entry is accounted for
                // exactly once across server / unsent / recorder.
                self.unsent.lock().expect("unsent lock").pop();
                Err(e)
            }
        }
    }

    fn close(&mut self) -> Result<(), WireError> {
        if self.error.is_some() {
            // Already failed and reported; the recorder is poisoned.
            return Ok(());
        }
        self.writer.close()?;
        self.pump()
    }
}

/// A [`LogSource`] reading one (run, variant, core) log back from an
/// `rr-serve` backend: the materialized `.rrlog` bytes are fetched in
/// one ranged request and decoded locally with the standard chunked
/// reader, so corruption anywhere surfaces as the same typed
/// [`WireError`]s a local file would produce.
pub struct RemoteSource {
    reader: ChunkedReader<Cursor<Vec<u8>>>,
}

impl RemoteSource {
    /// Fetches the whole log for `run`/`variant`/`core` from `addr`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on transport or server failure, including a typed
    /// [`RemoteFault::CorruptBlob`] when the stored data is damaged.
    pub fn fetch(addr: &str, run: &str, variant: &str, core: u8) -> Result<Self, StoreError> {
        let mut client = Client::connect(addr)?;
        let bytes = client.get_range(run, variant, core, 0, u64::MAX)?;
        let reader = ChunkedReader::new(Cursor::new(bytes)).map_err(|e| {
            StoreError::remote(
                RemoteFault::Protocol,
                format!("fetched log has a bad header: {e}"),
            )
        })?;
        Ok(RemoteSource { reader })
    }
}

impl LogSource for RemoteSource {
    fn core(&self) -> CoreId {
        self.reader.core()
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        self.reader.next_entry()
    }
}
